package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks the packages of one Go module using only
// the standard library: module-internal imports are resolved by walking the
// repo's own source tree, and everything else (the stdlib) is type-checked
// from GOROOT source via go/importer's "source" compiler. No x/tools, no
// export data, no `go list` subprocess.
//
// The loader groups each directory into one Package carrying every parsed
// file (including test files, for suppression and `// want` scanning) and a
// merged types.Info covering two type-checking units: the primary unit
// (non-test files plus in-package _test.go files) and, when present, the
// external test unit (package foo_test). Analyzers therefore see typed
// syntax for test code too.
//
// Type-check failures are collected per package in Package.TypeErrors
// rather than aborting the load: a broken package still yields its syntax
// and whatever partial type information go/types could recover, and the
// driver turns the errors into diagnostics instead of panicking.
type Loader struct {
	// Fset is the file set shared by every parsed file and the stdlib
	// source importer.
	Fset *token.FileSet

	root    string              // module root (dir containing go.mod)
	modpath string              // module path from go.mod (e.g. "uvmdiscard")
	extra   map[string]string   // extra pkg path -> dir (analysistest overlays)
	std     types.Importer      // srcimporter over GOROOT
	pkgs    map[string]*Package // loaded packages by module-relative path
	loading map[string]bool     // cycle detection during import resolution
	order   []*Package          // load completion order (dependencies first)
}

// NewLoader returns a Loader rooted at the module directory containing
// go.mod. extra maps additional package paths (as seen by analyzers, e.g.
// analysistest's "internal/badclock") to directories outside the normal
// tree; extra packages may import real module packages.
func NewLoader(root string, extra map[string]string) (*Loader, error) {
	modpath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	// The stdlib source importer honors go/build's default context. Cgo
	// packages (net, os/user, ...) cannot be type-checked from source
	// without running the cgo tool, so force the pure-Go variants; the
	// module itself is cgo-free.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		root:    root,
		modpath: modpath,
		extra:   extra,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// LoadModule loads and type-checks every package under the loader's module
// root (skipping testdata, hidden, and underscore directories) plus every
// extra package, returning them in dependency order (imports before
// importers). Per-package type errors are recorded, not returned: the only
// errors surfaced here are structural ones (unreadable tree, import
// cycles, unparseable go.mod).
func (l *Loader) LoadModule() ([]*Package, error) {
	var paths []string
	err := filepath.WalkDir(l.root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		rel, err := filepath.Rel(l.root, p)
		if err != nil {
			return err
		}
		base := filepath.Base(p)
		if rel != "." && (base == "testdata" || strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_")) {
			return filepath.SkipDir
		}
		path := filepath.ToSlash(rel)
		if path == "." {
			path = ""
		}
		paths = append(paths, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for p := range l.extra {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if _, err := l.Load(p); err != nil {
			return nil, err
		}
	}
	// Primary units are all checked; now check external test units, which
	// may import any primary package (including their own).
	for _, pkg := range l.order {
		if err := l.checkXTest(pkg); err != nil {
			return nil, err
		}
	}
	return l.order, nil
}

// LoadPackages loads just the given package paths (plus, transitively,
// anything they import), type-checks their external test units, and
// returns the requested packages in the given order. analysistest uses it
// to load overlay packages without touching the rest of the module.
func (l *Loader) LoadPackages(paths ...string) ([]*Package, error) {
	var out []*Package
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("analysis: no Go files in package %q", p)
		}
		out = append(out, pkg)
	}
	for _, pkg := range out {
		if err := l.checkXTest(pkg); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Load loads (and type-checks the primary unit of) the package at the
// given module-relative path, resolving its module imports recursively.
// Directories with no buildable Go files yield a nil Package, nil error.
func (l *Loader) Load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", l.importPath(path))
	}
	dir := l.extra[path]
	if dir == "" {
		dir = filepath.Join(l.root, filepath.FromSlash(path))
	}
	pkg, err := l.parseDir(dir, path)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		l.pkgs[path] = nil
		return nil, nil
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	// Resolve module imports of the primary unit first so the importer
	// can hand back completed packages.
	for _, f := range pkg.primary {
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if rel, ok := l.moduleRel(p); ok {
				if _, err := l.Load(rel); err != nil {
					return nil, err
				}
			}
		}
	}

	info := newInfo()
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	tpkg, _ := conf.Check(l.importPath(path), l.Fset, pkg.primary, info)
	pkg.TypesPkg = tpkg
	pkg.Info = info
	l.pkgs[path] = pkg
	l.order = append(l.order, pkg)
	return pkg, nil
}

// checkXTest type-checks pkg's external test unit (package foo_test), if
// any, merging its type information into pkg.Info so analyzers see one
// coherent view of the directory.
func (l *Loader) checkXTest(pkg *Package) error {
	if len(pkg.xtest) == 0 {
		return nil
	}
	for _, f := range pkg.xtest {
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if rel, ok := l.moduleRel(p); ok {
				if _, err := l.Load(rel); err != nil {
					return err
				}
			}
		}
	}
	info := newInfo()
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	xpkg, _ := conf.Check(l.importPath(pkg.Path)+"_test", l.Fset, pkg.xtest, info)
	pkg.xtestPkg = xpkg
	mergeInfo(pkg.Info, info)
	return nil
}

// importPath maps a module-relative path to the import path the type
// checker reports (module path for the root, joined otherwise). Extra
// (overlay) packages keep their bare path so analyzers' scoping rules see
// the same PkgPath in tests and real runs.
func (l *Loader) importPath(path string) string {
	if l.extra[path] != "" {
		return path
	}
	if path == "" {
		return l.modpath
	}
	return l.modpath + "/" + path
}

// moduleRel reports whether imp names a package inside this module (or an
// overlay package), returning its module-relative path.
func (l *Loader) moduleRel(imp string) (string, bool) {
	if imp == l.modpath {
		return "", true
	}
	if rel, ok := strings.CutPrefix(imp, l.modpath+"/"); ok {
		return rel, true
	}
	if _, ok := l.extra[imp]; ok {
		return imp, true
	}
	return "", false
}

// loaderImporter adapts the Loader to types.Importer: module imports come
// from the walked source tree, everything else from the stdlib source
// importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if rel, ok := l.moduleRel(path); ok {
		pkg, err := l.Load(rel)
		if err != nil {
			return nil, err
		}
		if pkg == nil || pkg.TypesPkg == nil {
			return nil, fmt.Errorf("analysis: no package at %q", path)
		}
		return pkg.TypesPkg, nil
	}
	return l.std.Import(path)
}

// parseDir parses every buildable .go file in dir into a Package, applying
// the default build context's file matching (GOOS/GOARCH suffixes and
// //go:build constraints, cgo off). Returns nil if no Go files survive.
func (l *Loader) parseDir(dir, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		// MatchFile applies the build-constraint rules (filename suffixes
		// and //go:build lines) a real build would; files excluded by
		// them (e.g. //go:build ignore) are invisible to analysis.
		if ok, err := build.Default.MatchFile(dir, e.Name()); err != nil || !ok {
			continue
		}
		names = append(names, e.Name())
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)
	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset}
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			// A syntactically broken file is a type error for the
			// package, not a fatal load error.
			pkg.TypeErrors = append(pkg.TypeErrors, err)
			continue
		}
		pkg.Files = append(pkg.Files, f)
		if strings.HasSuffix(f.Name.Name, "_test") {
			pkg.xtest = append(pkg.xtest, f)
		} else {
			pkg.primary = append(pkg.primary, f)
			if pkg.Name == "" {
				pkg.Name = f.Name.Name
			}
		}
	}
	if len(pkg.Files) == 0 {
		// Every file failed to parse: still a Package, so the errors
		// surface as diagnostics.
		pkg.Name = filepath.Base(dir)
		return pkg, nil
	}
	if pkg.Name == "" { // directory holds only an external test package
		pkg.Name = strings.TrimSuffix(pkg.Files[0].Name.Name, "_test")
		pkg.primary, pkg.xtest = pkg.xtest, nil
	}
	return pkg, nil
}

// newInfo allocates a types.Info with every map analyzers consume.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// mergeInfo folds src's maps into dst. The two units share no syntax
// nodes, so the merge is a disjoint union.
func mergeInfo(dst, src *types.Info) {
	for k, v := range src.Types {
		dst.Types[k] = v
	}
	for k, v := range src.Defs {
		dst.Defs[k] = v
	}
	for k, v := range src.Uses {
		dst.Uses[k] = v
	}
	for k, v := range src.Selections {
		dst.Selections[k] = v
	}
	for k, v := range src.Implicits {
		dst.Implicits[k] = v
	}
	for k, v := range src.Scopes {
		dst.Scopes[k] = v
	}
}

// LoadRepo is the driver entry point: locate the module root at or above
// start and load the whole module typed.
func LoadRepo(start string) ([]*Package, error) {
	root, err := ModuleRoot(start)
	if err != nil {
		return nil, err
	}
	l, err := NewLoader(root, nil)
	if err != nil {
		return nil, err
	}
	return l.LoadModule()
}

// ModuleRoot walks up from dir until it finds go.mod.
func ModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("no go.mod at or above %s", dir)
		}
		abs = parent
	}
}

// Package renamed imports gpudev under another name — the typed pass
// resolves the callee's receiver type, so the rename (which defeated the
// old import-name check) hides nothing.
package renamed

import gd "uvmdiscard/internal/gpudev"

// Steal pokes the free queue through the renamed import.
func Steal(d *gd.Device) *gd.Chunk {
	return d.PopFree() // want "queue mutator PopFree outside"
}

// Requeue re-files a chunk behind the driver's back.
func Requeue(d *gd.Device, c *gd.Chunk) {
	d.Touch(c) // want "queue mutator Touch outside"
}

// Package core stands in for the real driver: the queue-discipline owner,
// where mutator calls are legal.
package core

import "uvmdiscard/internal/gpudev"

// Reclaim is allowed to drive the queues directly.
func Reclaim(d *gpudev.Device) {
	if c := d.PopFree(); c != nil {
		d.PushUnused(c)
	}
	if c := d.PopUnused(); c != nil {
		d.PushFree(c)
	}
}

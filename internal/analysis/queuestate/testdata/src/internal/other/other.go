// Package other has methods that share names with the queue mutators but
// no gpudev import — the analyzer must stay quiet.
package other

// Pool is an unrelated type with a PopFree-shaped API.
type Pool struct{ free []int }

// PopFree pops from an int pool, nothing to do with gpudev.
func (p *Pool) PopFree() int {
	n := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	return n
}

// Drain calls it; fine, since this file never sees gpudev.
func Drain(p *Pool) {
	for range p.free {
		_ = p.PopFree()
	}
}

// Package sched seeds queuestate violations: it is not internal/core or
// internal/gpudev, yet pokes the device queues directly.
package sched

import "uvmdiscard/internal/gpudev"

// Steal grabs a chunk straight off the free queue.
func Steal(d *gpudev.Device) *gpudev.Chunk {
	return d.PopFree() // want "queue mutator PopFree outside"
}

// Shuffle moves a chunk between queues behind the driver's back.
func Shuffle(d *gpudev.Device, c *gpudev.Chunk) {
	d.Detach(c)        // want "queue mutator Detach outside"
	d.PushDiscarded(c) // want "queue mutator PushDiscarded outside"
}

// Recycle bypasses eviction accounting entirely.
func Recycle(d *gpudev.Device) {
	if c := d.PopDiscarded(); c != nil { // want "queue mutator PopDiscarded outside"
		d.PushFree(c) // want "queue mutator PushFree outside"
	}
}

// Quarantine retires a chunk behind the driver's back: the poison policy
// (which block loses its data, and how the loss is accounted) belongs to
// internal/core.
func Quarantine(d *gpudev.Device, c *gpudev.Chunk) {
	d.PushPoisoned(c) // want "queue mutator PushPoisoned outside"
}

// Peek only reads; QueueLen and LRUVictim are not mutators.
func Peek(d *gpudev.Device) int {
	_ = d.LRUVictim()
	return d.QueueLen(gpudev.QueueFree)
}

package queuestate_test

import (
	"testing"

	"uvmdiscard/internal/analysis/analysistest"
	"uvmdiscard/internal/analysis/queuestate"
)

func TestQueuestate(t *testing.T) {
	analysistest.Run(t, "testdata", queuestate.Analyzer,
		"internal/sched", "internal/core", "internal/other", "internal/renamed")
}

// Package queuestate defines an analyzer that keeps the gpudev physical
// page-queue discipline single-owned: the queue mutators on gpudev.Device
// (PushFree, PushUnused, PushUsed, PushDiscarded, PushPoisoned, Detach,
// Touch, PopFree, PopUnused, PopDiscarded) may only be called from
// internal/core (the UVM driver, which owns the §5.5 eviction/discard
// protocol and the poison-quarantine policy) and internal/gpudev itself
// (the implementation and its tests).
//
// Everything else must go through the driver's public API so the
// chunk-in-exactly-one-queue invariant (enforced at runtime by the core
// sanitizer) has exactly one owner to audit.
//
// The pass is typed: a call counts only when the callee resolves to a
// method of gpudev.Device, so unrelated types that happen to share a
// mutator name are never flagged, and renaming or dot-importing gpudev no
// longer hides a call the way it did from the old import-name match.
package queuestate

import (
	"go/ast"
	"strings"

	"uvmdiscard/internal/analysis"
)

// Analyzer is the queuestate pass.
var Analyzer = &analysis.Analyzer{
	Name: "queuestate",
	Doc: "restrict gpudev queue mutator calls (PushFree, Detach, PopFree, ...) " +
		"to internal/core and internal/gpudev",
	Run: run,
}

// gpudevPath is the import path of the queue implementation.
const gpudevPath = "uvmdiscard/internal/gpudev"

// mutators are the Device methods that move chunks between queues.
var mutators = map[string]bool{
	"PushFree":      true,
	"PushUnused":    true,
	"PushUsed":      true,
	"PushDiscarded": true,
	"PushPoisoned":  true,
	"Detach":        true,
	"Touch":         true,
	"PopFree":       true,
	"PopUnused":     true,
	"PopDiscarded":  true,
}

// allowed are the package paths that own the queue discipline.
var allowed = map[string]bool{
	"internal/core":   true,
	"internal/gpudev": true,
}

func run(pass *analysis.Pass) error {
	if allowed[pass.PkgPath] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.Callee(pass.TypesInfo, call)
			if fn == nil || !mutators[fn.Name()] {
				return true
			}
			recv := analysis.ReceiverNamed(fn)
			if recv == nil || recv.Obj().Name() != "Device" || analysis.ObjPkgPath(recv.Obj()) != gpudevPath {
				return true
			}
			pass.Reportf(call.Pos(),
				"call to gpudev queue mutator %s outside internal/core and internal/gpudev: queue discipline is owned by the driver; use the core.Driver API (package %s)",
				fn.Name(), pkgLabel(pass.PkgPath))
			return true
		})
	}
	return nil
}

func pkgLabel(path string) string {
	if path == "" {
		return "module root"
	}
	return strings.TrimSuffix(path, "/")
}

// Package discardproto defines the static half of the discard protocol
// checker: a flow-sensitive, per-function analysis that tracks each
// managed-buffer handle through the states live → discarded / lazily
// discarded → freed and reports uses that the protocol forbids:
//
//   - reading a handle (kernel Read/ReadWrite access, HostRead, Data)
//     after a full discard, before a rewrite or prefetch — discard
//     declares the contents dead, so the read returns zeros at best;
//   - any kernel access to a lazily discarded handle before the mandatory
//     re-prefetch (§5.2) — the exact hazard the runtime sanitizer's
//     PanicOnSilentReuse escalates, caught here without running anything;
//   - any use after Buffer.Free / Driver.FreeManaged, including a second
//     free.
//
// State transitions follow the driver's semantics (see DESIGN.md §13 for
// the full static-rule → runtime-sanitizer mapping): Discard/DiscardAll
// over the whole buffer → discarded; the Lazy flavors → lazily discarded;
// any prefetch → live; a full host rewrite (HostWrite(0, b.Size()),
// copy(b.Data(), …)) → live; a kernel Write access over the whole buffer →
// live (eager discard only: for the lazy flavor the write itself is the
// silent-reuse hazard). Partial discards and partial writes are tracked
// conservatively as no-ops — the driver ignores sub-block discards (§5.4),
// and a partially rewritten buffer is neither safely dead nor safely live.
//
// The analysis is intraprocedural with interprocedural effects: every
// analyzed function exports a FnEffects fact giving the end-state of its
// handle parameters (workloads.Discard carries "discards param 2" to every
// call site in every workload). A call into unanalyzed code resets its
// handle arguments to live — unknown code is assumed correct rather than
// guessed about. Branches merge to the worst state; loop bodies are walked
// twice (a silent pass to reach the fixed point, then a reporting pass) so
// a discard at the bottom of a loop is seen by a read at the top.
//
// The driver-implementation packages (internal/core, internal/vaspace,
// internal/gpudev, internal/cuda) are exempt: they implement the states
// and must manipulate dead data. Test files are exempt: tests deliberately
// exercise the forbidden sequences.
package discardproto

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"uvmdiscard/internal/analysis"
)

// Analyzer is the discardproto pass.
var Analyzer = &analysis.Analyzer{
	Name: "discardproto",
	Doc: "track managed-buffer handles through discard/free states and " +
		"report reads of dead data, lazy-discard silent reuse, and use after free",
	Run: run,
}

// FnEffects is the object fact recording what a function does to its
// handle parameters: the caller applies each effect to the corresponding
// argument. A function that was analyzed and found effect-free exports an
// empty FnEffects — distinguishing "known harmless" from "unknown".
type FnEffects struct {
	Params []ParamEffect
}

// ParamEffect is one parameter's end state.
type ParamEffect struct {
	// Index is the parameter position (receiver excluded).
	Index int
	// Effect is "discard", "discardLazy", or "free".
	Effect string
}

// hstate is a handle's protocol state; higher is worse, and branch merge
// takes the maximum.
type hstate int

const (
	stLive hstate = iota
	stDiscarded
	stLazy
	stFreed
)

// exempt lists the driver-implementation trees where dead data is the
// working material, not a bug.
var exempt = []string{"internal/core", "internal/vaspace", "internal/gpudev", "internal/cuda"}

func run(pass *analysis.Pass) error {
	for _, e := range exempt {
		if pass.PkgPath == e || strings.HasPrefix(pass.PkgPath, e+"/") {
			return nil
		}
	}

	// Pass 1 — effects: walk every function silently and export its
	// FnEffects fact, so pass 2 sees intra-package callees (and later
	// packages see ours — packages run in dependency order).
	for _, fd := range funcDecls(pass) {
		fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		if !ok {
			continue
		}
		w := newWalker(pass, true)
		w.block(fd.Body.List)
		var eff FnEffects
		sig := fn.Type().(*types.Signature)
		for i := 0; i < sig.Params().Len(); i++ {
			p := sig.Params().At(i)
			if !trackedType(p.Type()) {
				continue
			}
			switch w.get(p) {
			case stDiscarded, stLazy:
				// The merged end state cannot distinguish "lazy on every
				// path" from "lazy on one flavor-dispatch branch"
				// (workloads.Discard is eager or lazy depending on the
				// system under test), so fact-carried discards are demoted
				// to eager: callers are still flagged for reading dead
				// data, but not for the lazy-only write hazard a different
				// branch may have paired correctly. Direct DiscardLazy*
				// calls keep full lazy precision.
				eff.Params = append(eff.Params, ParamEffect{Index: i, Effect: "discard"})
			case stFreed:
				eff.Params = append(eff.Params, ParamEffect{Index: i, Effect: "free"})
			}
		}
		pass.ExportObjectFact(fn, &eff)
	}

	// Pass 2 — report.
	for _, fd := range funcDecls(pass) {
		w := newWalker(pass, false)
		w.block(fd.Body.List)
	}
	return nil
}

func funcDecls(pass *analysis.Pass) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}

// trackedType reports whether t is a handle type the protocol governs:
// *cuda.Buffer or *vaspace.Alloc.
func trackedType(t types.Type) bool {
	return analysis.IsNamed(t, "uvmdiscard/internal/cuda", "Buffer") ||
		analysis.IsNamed(t, "uvmdiscard/internal/vaspace", "Alloc")
}

// walker runs the state machine over one function body.
type walker struct {
	pass     *analysis.Pass
	st       map[types.Object]hstate
	quiet    bool
	reported map[token.Pos]bool
	// dataWrite marks b.Data() calls already consumed as the destination
	// of a copy() — a write, not a read of dead data.
	dataWrite map[*ast.CallExpr]bool
	// revived records objects explicitly brought back to live from a
	// discarded state inside the current branch scope. Control-flow merges
	// treat a handle revived on one path as revived on the join: a
	// conditional pairing prefetch is near-always guarded by the same flag
	// as the conditional discard it pairs with (`if lazy && i > 0 {
	// prefetch }` … `if lazy { discardLazy }`), a correlation the
	// flow-insensitive worst-state join cannot see. The static pass errs
	// quiet here; the runtime sanitizer remains the sound backstop.
	revived map[types.Object]bool
}

func newWalker(pass *analysis.Pass, quiet bool) *walker {
	return &walker{
		pass:      pass,
		st:        map[types.Object]hstate{},
		quiet:     quiet,
		reported:  map[token.Pos]bool{},
		dataWrite: map[*ast.CallExpr]bool{},
		revived:   map[types.Object]bool{},
	}
}

func (w *walker) get(obj types.Object) hstate { return w.st[obj] }

func (w *walker) set(obj types.Object, s hstate) {
	if s == stLive {
		if old := w.st[obj]; old == stDiscarded || old == stLazy {
			w.revived[obj] = true
		}
		delete(w.st, obj)
		return
	}
	w.st[obj] = s
}

func (w *walker) reportf(pos token.Pos, format string, args ...any) {
	if w.quiet || w.reported[pos] {
		return
	}
	w.reported[pos] = true
	w.pass.Reportf(pos, format, args...)
}

func (w *walker) snapshot() map[types.Object]hstate {
	c := make(map[types.Object]hstate, len(w.st))
	for k, v := range w.st {
		c[k] = v
	}
	return c
}

// mergeWorst folds other into the current state, object by object, keeping
// the worse of the two — the conservative join at control-flow merges.
func (w *walker) mergeWorst(other map[types.Object]hstate) {
	for k, v := range other {
		if v > w.st[k] {
			w.st[k] = v
		}
	}
}

func (w *walker) block(stmts []ast.Stmt) {
	for _, s := range stmts {
		w.stmt(s)
	}
}

func (w *walker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.expr(s.X)
	case *ast.AssignStmt:
		w.assign(s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.expr(e)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.expr(s.Cond)
		entry := w.snapshot()
		outerRev := w.revived
		w.revived = map[types.Object]bool{}
		w.stmt(s.Body)
		thenExit, thenRev := w.st, w.revived
		w.st = entry
		w.revived = map[types.Object]bool{}
		if s.Else != nil {
			w.stmt(s.Else)
		}
		elseExit, elseRev := w.snapshot(), w.revived
		w.revived = outerRev
		w.mergeWorst(thenExit)
		// A handle revived on either path takes the better of the two exit
		// states instead of the worst (see the revived field).
		for _, rev := range []map[types.Object]bool{thenRev, elseRev} {
			for k := range rev {
				best := thenExit[k]
				if elseExit[k] < best {
					best = elseExit[k]
				}
				w.set(k, best)
				outerRev[k] = true
			}
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Cond != nil {
			w.expr(s.Cond)
		}
		w.loopBody(func() {
			w.stmt(s.Body)
			if s.Post != nil {
				w.stmt(s.Post)
			}
		})
	case *ast.RangeStmt:
		w.expr(s.X)
		w.loopBody(func() { w.stmt(s.Body) })
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Tag != nil {
			w.expr(s.Tag)
		}
		w.branches(s.Body.List)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.stmt(s.Assign)
		w.branches(s.Body.List)
	case *ast.SelectStmt:
		w.branches(s.Body.List)
	case *ast.CaseClause:
		for _, e := range s.List {
			w.expr(e)
		}
		w.block(s.Body)
	case *ast.CommClause:
		if s.Comm != nil {
			w.stmt(s.Comm)
		}
		w.block(s.Body)
	case *ast.BlockStmt:
		w.block(s.List)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.DeferStmt:
		// Deferred cleanup (defer b.Free()) runs at return, after every
		// statement below it: applying its effect at the defer site would
		// flag the whole rest of the function. Skipped entirely.
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			w.expr(a)
		}
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			gw := newWalker(w.pass, w.quiet)
			gw.reported = w.reported
			gw.block(lit.Body.List)
		}
	case *ast.SendStmt:
		w.expr(s.Chan)
		w.expr(s.Value)
	case *ast.IncDecStmt:
		w.expr(s.X)
	}
}

// branches runs each clause against a copy of the entry state and merges
// every exit (plus the entry itself — no clause may match) to the worst,
// except that a handle revived in any clause takes the best exit state
// across all paths (see the revived field).
func (w *walker) branches(clauses []ast.Stmt) {
	entry := w.snapshot()
	outerRev := w.revived
	revAny := map[types.Object]bool{}
	exits := []map[types.Object]hstate{entry}
	for _, c := range clauses {
		w.st = copyState(entry)
		w.revived = map[types.Object]bool{}
		w.stmt(c)
		exits = append(exits, w.st)
		for k := range w.revived {
			revAny[k] = true
			outerRev[k] = true
		}
	}
	merged := map[types.Object]hstate{}
	for _, ex := range exits {
		for k, v := range ex {
			if v > merged[k] {
				merged[k] = v
			}
		}
	}
	for k := range revAny {
		best := exits[0][k]
		for _, ex := range exits[1:] {
			if ex[k] < best {
				best = ex[k]
			}
		}
		if best == stLive {
			delete(merged, k)
		} else {
			merged[k] = best
		}
	}
	w.st = merged
	w.revived = outerRev
}

// loopBody walks a loop body twice: a silent pass from the entry state to
// discover what the body does to each handle, then — from the merge of
// entry and that exit, which is what any iteration after the first sees —
// a reporting pass. A discard at the bottom of the loop is therefore
// visible to a read at the top.
func (w *walker) loopBody(body func()) {
	entry := w.snapshot()
	savedQuiet := w.quiet
	w.quiet = true
	body()
	w.quiet = savedQuiet
	w.mergeWorst(entry)
	body()
	w.mergeWorst(entry)
}

func copyState(m map[types.Object]hstate) map[types.Object]hstate {
	c := make(map[types.Object]hstate, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// assign transfers state through `x = y` and swaps (`cur, next = next,
// cur`); any other right-hand side yields a fresh, live handle.
func (w *walker) assign(s *ast.AssignStmt) {
	for _, r := range s.Rhs {
		w.expr(r)
	}
	if len(s.Lhs) == len(s.Rhs) {
		vals := make([]hstate, len(s.Rhs))
		for i, r := range s.Rhs {
			if obj := w.identObj(r); obj != nil && trackedType(obj.Type()) {
				vals[i] = w.get(obj)
			}
		}
		for i, l := range s.Lhs {
			if obj := w.lhsObj(l); obj != nil && trackedType(obj.Type()) {
				w.set(obj, vals[i])
			}
		}
		return
	}
	// x, err := f(): fresh handles.
	for _, l := range s.Lhs {
		if obj := w.lhsObj(l); obj != nil && trackedType(obj.Type()) {
			w.set(obj, stLive)
		}
	}
}

func (w *walker) identObj(e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := w.pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return w.pass.TypesInfo.Defs[id]
}

func (w *walker) lhsObj(e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := w.pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return w.pass.TypesInfo.Uses[id]
}

// expr walks an expression, dispatching every call to the ops table; func
// literals are independent functions whose captured handles are assumed
// live at their unknown execution time.
func (w *walker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			lw := newWalker(w.pass, w.quiet)
			lw.reported = w.reported
			lw.block(x.Body.List)
			return false
		case *ast.CallExpr:
			w.handleCall(x)
			return true
		}
		return true
	})
}

// handleCall is the ops table: the protocol-relevant Stream, Buffer, and
// Driver calls, analyzed functions' exported effects, and the
// reset-to-live default for everything unknown.
func (w *walker) handleCall(call *ast.CallExpr) {
	fn := analysis.Callee(w.pass.TypesInfo, call)
	if fn == nil {
		w.handleBuiltin(call)
		return
	}
	recv := analysis.ReceiverNamed(fn)
	if recv != nil {
		switch {
		case analysis.ObjPkgPath(recv.Obj()) == "uvmdiscard/internal/cuda" && recv.Obj().Name() == "Stream":
			w.streamOp(fn.Name(), call)
			return
		case analysis.ObjPkgPath(recv.Obj()) == "uvmdiscard/internal/cuda" && recv.Obj().Name() == "Buffer":
			w.bufferOp(fn.Name(), call)
			return
		case analysis.ObjPkgPath(recv.Obj()) == "uvmdiscard/internal/core" && recv.Obj().Name() == "Driver":
			w.driverOp(fn.Name(), call)
			return
		}
	}
	// Analyzed function: apply its exported per-parameter effects.
	var eff FnEffects
	if w.pass.ImportObjectFact(fn, &eff) {
		for _, pe := range eff.Params {
			if pe.Index >= len(call.Args) {
				continue
			}
			obj := w.identObj(call.Args[pe.Index])
			if obj == nil || !trackedType(obj.Type()) {
				continue
			}
			if w.checkFreed(obj, call.Args[pe.Index].Pos()) {
				continue
			}
			switch pe.Effect {
			case "discard":
				w.set(obj, stDiscarded)
			case "discardLazy":
				w.set(obj, stLazy)
			case "free":
				w.set(obj, stFreed)
			}
		}
		return
	}
	// Unknown code: assume it leaves every handle it receives in a valid
	// live state rather than inventing findings about it.
	for _, a := range call.Args {
		if obj := w.identObj(a); obj != nil && trackedType(obj.Type()) {
			w.set(obj, stLive)
		}
	}
}

// handleBuiltin covers copy(b.Data(), …): a host write through the data
// slice, which revives the buffer rather than reading it.
func (w *walker) handleBuiltin(call *ast.CallExpr) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return
	}
	b, ok := w.pass.TypesInfo.Uses[id].(*types.Builtin)
	if !ok || b.Name() != "copy" || len(call.Args) != 2 {
		return
	}
	dst, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	dfn := analysis.Callee(w.pass.TypesInfo, dst)
	if dfn == nil || dfn.Name() != "Data" {
		return
	}
	obj := w.receiverObj(dst)
	if obj == nil {
		return
	}
	w.dataWrite[dst] = true
	if !w.checkFreed(obj, dst.Pos()) {
		w.set(obj, stLive)
	}
}

// streamOp applies a cuda.Stream method; the handle is the first argument.
func (w *walker) streamOp(name string, call *ast.CallExpr) {
	if name == "Launch" {
		w.launch(call)
		return
	}
	if len(call.Args) == 0 {
		return
	}
	obj := w.identObj(call.Args[0])
	if obj == nil || !trackedType(obj.Type()) {
		return
	}
	if w.checkFreed(obj, call.Args[0].Pos()) {
		return
	}
	switch name {
	case "DiscardAll":
		w.set(obj, stDiscarded)
	case "DiscardLazyAll":
		w.set(obj, stLazy)
	case "DiscardAsync":
		if w.fullRange(call.Args[1:], obj) {
			w.set(obj, stDiscarded)
		}
	case "DiscardLazyAsync":
		if w.fullRange(call.Args[1:], obj) {
			w.set(obj, stLazy)
		}
	case "MemPrefetchAsync", "PrefetchAll", "PrefetchAllTo":
		w.set(obj, stLive)
	}
}

// bufferOp applies a cuda.Buffer method; the handle is the receiver.
func (w *walker) bufferOp(name string, call *ast.CallExpr) {
	obj := w.receiverObj(call)
	if obj == nil {
		return
	}
	switch name {
	case "Free":
		if w.get(obj) == stFreed {
			w.reportf(call.Pos(), "%s is freed twice", obj.Name())
			return
		}
		w.set(obj, stFreed)
	case "HostWrite":
		if w.checkFreed(obj, call.Pos()) {
			return
		}
		// A full rewrite revives the buffer (§4.1: a write after discard
		// is guaranteed to be seen); a partial write leaves it dead.
		if len(call.Args) == 2 && w.fullRange(call.Args, obj) {
			w.set(obj, stLive)
		}
	case "HostRead":
		if w.checkFreed(obj, call.Pos()) {
			return
		}
		if s := w.get(obj); s == stDiscarded || s == stLazy {
			w.reportDeadRead(call.Pos(), obj)
		}
	case "Data":
		if w.dataWrite[call] {
			return
		}
		if w.checkFreed(obj, call.Pos()) {
			return
		}
		if s := w.get(obj); s == stDiscarded || s == stLazy {
			w.reportDeadRead(call.Pos(), obj)
		}
	case "Size", "Name", "Alloc":
		// Metadata stays valid through discard; not a data read.
	default:
		w.checkFreed(obj, call.Pos())
	}
}

// driverOp applies a core.Driver method; the handle is the first argument.
func (w *walker) driverOp(name string, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	obj := w.identObj(call.Args[0])
	if obj == nil || !trackedType(obj.Type()) {
		return
	}
	if w.checkFreed(obj, call.Args[0].Pos()) {
		return
	}
	switch name {
	case "Discard":
		w.set(obj, stDiscarded)
	case "DiscardLazy":
		w.set(obj, stLazy)
	case "FreeManaged":
		w.set(obj, stFreed)
	case "PrefetchToGPU", "PrefetchToGPUOn", "PrefetchToCPU":
		w.set(obj, stLive)
	}
}

// launch checks a kernel launch's access trace against each buffer's
// state, in declaration order: reads of discarded data and any access to a
// lazily discarded buffer are reported; a whole-buffer Write access
// revives an eagerly discarded buffer. A launch whose access list is not a
// literal (built with append, passed through a variable) is opaque: it may
// rewrite any buffer, so every discarded handle is reset to live rather
// than guessed about.
func (w *walker) launch(call *ast.CallExpr) {
	if len(call.Args) != 1 {
		w.resetDiscards()
		return
	}
	k, ok := ast.Unparen(call.Args[0]).(*ast.CompositeLit)
	if !ok {
		w.resetDiscards()
		return
	}
	for _, el := range k.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); !ok || key.Name != "Accesses" {
			continue
		}
		accs, ok := kv.Value.(*ast.CompositeLit)
		if !ok {
			w.resetDiscards()
			continue
		}
		for _, ael := range accs.Elts {
			acc, ok := ael.(*ast.CompositeLit)
			if !ok {
				w.resetDiscards()
				continue
			}
			w.kernelAccess(acc)
		}
	}
}

// resetDiscards revives every discarded (but not freed) handle — the join
// for kernel launches whose access set cannot be read off the source.
func (w *walker) resetDiscards() {
	for obj, s := range w.st {
		if s == stDiscarded || s == stLazy {
			w.set(obj, stLive)
		}
	}
}

func (w *walker) kernelAccess(acc *ast.CompositeLit) {
	var bufObj types.Object
	mode := "Read" // the zero value of core.AccessMode
	partial := false
	var pos token.Pos
	for _, el := range acc.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch key.Name {
		case "Buf":
			bufObj = w.identObj(kv.Value)
			pos = kv.Value.Pos()
		case "Mode":
			if c, ok := w.pass.TypesInfo.Uses[identOf(kv.Value)].(*types.Const); ok {
				mode = c.Name()
			}
		case "Offset", "Length":
			if lit, ok := ast.Unparen(kv.Value).(*ast.BasicLit); !ok || lit.Value != "0" {
				partial = true
			}
		}
	}
	if bufObj == nil || !trackedType(bufObj.Type()) {
		return
	}
	switch w.get(bufObj) {
	case stFreed:
		w.reportf(pos, "%s is accessed by a kernel after free", bufObj.Name())
	case stLazy:
		w.reportf(pos,
			"%s is accessed by a kernel after DiscardLazy without the mandatory re-prefetch (§5.2): "+
				"the access faults nowhere, the driver never sees it, and a later reclaim silently loses the data "+
				"— the runtime sanitizer panics here under PanicOnSilentReuse",
			bufObj.Name())
	case stDiscarded:
		if mode == "Read" || mode == "ReadWrite" {
			w.reportDeadRead(pos, bufObj)
		} else if mode == "Write" && !partial {
			w.set(bufObj, stLive)
		}
	}
}

func (w *walker) reportDeadRead(pos token.Pos, obj types.Object) {
	w.reportf(pos,
		"%s is read after being discarded, with no rewrite or prefetch in between: "+
			"discard declares the contents dead, so the read sees zeros at best",
		obj.Name())
}

// checkFreed reports (and returns true) when obj is already freed.
func (w *walker) checkFreed(obj types.Object, pos token.Pos) bool {
	if w.get(obj) != stFreed {
		return false
	}
	w.reportf(pos, "%s is used after free", obj.Name())
	return true
}

// receiverObj resolves the receiver of a method call when it is a plain
// identifier (b.Free() → b); anything more complex is untracked.
func (w *walker) receiverObj(call *ast.CallExpr) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	obj := w.identObj(sel.X)
	if obj == nil || !trackedType(obj.Type()) {
		return nil
	}
	return obj
}

// fullRange reports whether (off, length) arguments statically cover the
// whole buffer: the literal 0 and a b.Size() call on the same handle.
func (w *walker) fullRange(args []ast.Expr, obj types.Object) bool {
	if len(args) != 2 {
		return false
	}
	off, ok := ast.Unparen(args[0]).(*ast.BasicLit)
	if !ok || off.Value != "0" {
		return false
	}
	sz, ok := ast.Unparen(args[1]).(*ast.CallExpr)
	if !ok {
		return false
	}
	szFn := analysis.Callee(w.pass.TypesInfo, sz)
	if szFn == nil || szFn.Name() != "Size" {
		return false
	}
	return w.receiverObj(sz) == obj
}

func identOf(e ast.Expr) *ast.Ident {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x
	case *ast.SelectorExpr:
		return x.Sel
	}
	return nil
}

package discardproto_test

import (
	"strings"
	"testing"

	"uvmdiscard/internal/analysis/analysistest"
	"uvmdiscard/internal/analysis/discardproto"
	"uvmdiscard/internal/core"
	"uvmdiscard/internal/cuda"
	"uvmdiscard/internal/gpudev"
	"uvmdiscard/internal/units"
)

func TestDiscardproto(t *testing.T) {
	// internal/workloads is the real module package: loading it first
	// exports the FnEffects facts protobad.FactFlow depends on, and
	// asserts the package itself is finding-free.
	analysistest.Run(t, "testdata", discardproto.Analyzer,
		"internal/workloads", "protobad", "protogood")
}

// TestRuntimeSanitizerAgreement runs protobad.Hazard's exact operation
// sequence — produce, DiscardLazyAll, consume without re-prefetch — on the
// real simulator with PanicOnSilentReuse: the runtime sanitizer must catch
// at execution time what discardproto flags at lint time.
func TestRuntimeSanitizerAgreement(t *testing.T) {
	params := core.DefaultParams()
	params.PanicOnSilentReuse = true
	ctx, err := cuda.NewContext(core.Config{
		GPU:    gpudev.Generic(16 * units.BlockSize),
		Params: &params,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ctx.MallocManaged("hazard", 2*units.BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	s := ctx.Stream("s")
	if err := s.Launch(cuda.Kernel{
		Name:     "produce",
		Accesses: []cuda.Access{{Buf: b, Mode: core.Write}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.DiscardLazyAll(b); err != nil {
		t.Fatal(err)
	}

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("the statically flagged sequence did not panic under PanicOnSilentReuse")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "protocol violation") {
			t.Fatalf("panic %v is not the silent-reuse protocol violation", r)
		}
	}()
	if err := s.Launch(cuda.Kernel{
		Name:     "consume",
		Accesses: []cuda.Access{{Buf: b, Mode: core.Read}},
	}); err != nil {
		t.Fatal(err)
	}
}

// TestRuntimeSanitizerAllowsPairing is the control: protogood's
// prefetch-pairing sequence must run clean under the same sanitizer.
func TestRuntimeSanitizerAllowsPairing(t *testing.T) {
	params := core.DefaultParams()
	params.PanicOnSilentReuse = true
	ctx, err := cuda.NewContext(core.Config{
		GPU:    gpudev.Generic(16 * units.BlockSize),
		Params: &params,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ctx.MallocManaged("paired", 2*units.BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	s := ctx.Stream("s")
	if err := s.Launch(cuda.Kernel{
		Name:     "produce",
		Accesses: []cuda.Access{{Buf: b, Mode: core.Write}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.DiscardLazyAll(b); err != nil {
		t.Fatal(err)
	}
	if err := s.PrefetchAll(b, cuda.ToGPU); err != nil {
		t.Fatal(err)
	}
	if err := s.Launch(cuda.Kernel{
		Name:     "consume",
		Accesses: []cuda.Access{{Buf: b, Mode: core.Read}},
	}); err != nil {
		t.Fatal(err)
	}
	ctx.DeviceSynchronize()
}

// Package protogood exercises every legal post-discard pattern the
// workloads rely on: none of these may produce a finding.
package protogood

import (
	"uvmdiscard/internal/core"
	"uvmdiscard/internal/cuda"
	"uvmdiscard/internal/units"
)

// PrefetchPairing is the documented UvmDiscardLazy protocol: discard,
// re-prefetch, reuse.
func PrefetchPairing(s *cuda.Stream, b *cuda.Buffer) error {
	if err := s.DiscardLazyAll(b); err != nil {
		return err
	}
	if err := s.PrefetchAll(b, cuda.ToGPU); err != nil {
		return err
	}
	return s.Launch(cuda.Kernel{
		Name:     "reuse",
		Accesses: []cuda.Access{{Buf: b, Mode: core.Read}},
	})
}

// KernelRewrite revives an eagerly discarded buffer with a whole-buffer
// Write access before reading it.
func KernelRewrite(s *cuda.Stream, b *cuda.Buffer) error {
	if err := s.DiscardAll(b); err != nil {
		return err
	}
	err := s.Launch(cuda.Kernel{
		Name:     "refill",
		Accesses: []cuda.Access{{Buf: b, Mode: core.Write}},
	})
	if err != nil {
		return err
	}
	return b.HostRead(0, b.Size())
}

// HostRewrite revives through the host API: a full HostWrite, or a copy
// into the data slice.
func HostRewrite(s *cuda.Stream, c *cuda.Buffer, src []byte) error {
	if err := s.DiscardAll(c); err != nil {
		return err
	}
	if err := c.HostWrite(0, c.Size()); err != nil {
		return err
	}
	if err := c.HostRead(0, c.Size()); err != nil {
		return err
	}
	if err := s.DiscardAll(c); err != nil {
		return err
	}
	copy(c.Data(), src)
	return c.HostRead(0, c.Size())
}

// PartialDiscard mirrors FIR: only the consumed window is discarded, so
// the handle as a whole stays live and later windows may be read.
func PartialDiscard(s *cuda.Stream, b *cuda.Buffer, off, win units.Size) error {
	if err := s.DiscardAsync(b, off, win); err != nil {
		return err
	}
	return s.Launch(cuda.Kernel{
		Name:     "nextwindow",
		Accesses: []cuda.Access{{Buf: b, Offset: off + win, Length: win, Mode: core.Read}},
	})
}

// Swap mirrors the BFS frontier rotation: discard the consumed frontier,
// swap, and rely on the full Write access to revive the reused buffer.
func Swap(s *cuda.Stream, cur, next *cuda.Buffer) error {
	for i := 0; i < 4; i++ {
		err := s.Launch(cuda.Kernel{
			Name: "level",
			Accesses: []cuda.Access{
				{Buf: cur, Mode: core.Read},
				{Buf: next, Mode: core.Write},
			},
		})
		if err != nil {
			return err
		}
		if err := s.DiscardAll(cur); err != nil {
			return err
		}
		cur, next = next, cur
	}
	return nil
}

// Suppressed documents a deliberate dead read with the required
// justification.
func Suppressed(s *cuda.Stream, b *cuda.Buffer) error {
	if err := s.DiscardAll(b); err != nil {
		return err
	}
	//uvmlint:ignore discardproto -- fixture: reading zeros is this test's point
	return b.HostRead(0, b.Size())
}

// Package protobad seeds every class of discard-protocol violation the
// static checker must flag — including the §5.2 silent-reuse sequence the
// runtime sanitizer catches under PanicOnSilentReuse (the agreement test
// in discardproto_test.go runs this exact sequence against the simulator).
package protobad

import (
	"uvmdiscard/internal/core"
	"uvmdiscard/internal/cuda"
	"uvmdiscard/internal/workloads"
)

// Hazard is the seeded silent-reuse program: produce, lazily discard,
// consume without the mandatory re-prefetch.
func Hazard(s *cuda.Stream, b *cuda.Buffer) error {
	err := s.Launch(cuda.Kernel{
		Name:     "produce",
		Accesses: []cuda.Access{{Buf: b, Mode: core.Write}},
	})
	if err != nil {
		return err
	}
	if err := s.DiscardLazyAll(b); err != nil {
		return err
	}
	return s.Launch(cuda.Kernel{
		Name:     "consume",
		Accesses: []cuda.Access{{Buf: b, Mode: core.Read}}, // want `b is accessed by a kernel after DiscardLazy without the mandatory re-prefetch`
	})
}

// ReadDead reads through the host API after an eager discard.
func ReadDead(s *cuda.Stream, b *cuda.Buffer) error {
	if err := s.DiscardAll(b); err != nil {
		return err
	}
	if err := b.HostRead(0, b.Size()); err != nil { // want `b is read after being discarded`
		return err
	}
	_ = b.Data()[0] // want `b is read after being discarded`
	return nil
}

// FactFlow discards through workloads.Discard — the effect arrives at
// this call site as an exported FnEffects fact, not a built-in rule.
func FactFlow(sys workloads.System, s *cuda.Stream, b *cuda.Buffer) error {
	if err := workloads.Discard(sys, s, b); err != nil {
		return err
	}
	return s.Launch(cuda.Kernel{
		Name:     "reuse",
		Accesses: []cuda.Access{{Buf: b, Mode: core.Read}}, // want `b is read after being discarded`
	})
}

// LoopCarried discards at the bottom of the loop; the read at the top is
// dead from the second iteration on.
func LoopCarried(s *cuda.Stream, b *cuda.Buffer) error {
	for i := 0; i < 4; i++ {
		err := s.Launch(cuda.Kernel{
			Name:     "sweep",
			Accesses: []cuda.Access{{Buf: b, Mode: core.Read}}, // want `b is read after being discarded`
		})
		if err != nil {
			return err
		}
		if err := s.DiscardAll(b); err != nil {
			return err
		}
	}
	return nil
}

// Freed uses the buffer after Free, then frees it again.
func Freed(b *cuda.Buffer) error {
	if err := b.Free(); err != nil {
		return err
	}
	if err := b.HostWrite(0, b.Size()); err != nil { // want `b is used after free`
		return err
	}
	return b.Free() // want `b is freed twice`
}

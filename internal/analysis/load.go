package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is the parsed syntax of one directory's Go files. Files from the
// in-package test package (package foo + package foo_test in the same
// directory) are grouped into one Package: the analyzers here are syntactic
// and scope by directory, not by compilation unit.
type Package struct {
	// Name is the non-test package clause name.
	Name string
	// Path is the module-relative import path ("" for the module root).
	Path string
	// Dir is the absolute directory.
	Dir string
	// Fset is the file set all Files were parsed into.
	Fset *token.FileSet
	// Files are the parsed files, comments included, sorted by filename.
	Files []*ast.File
}

// LoadDir parses every .go file in dir (non-recursively) into one Package
// with the given module-relative path. Returns nil (no error) if the
// directory contains no Go files.
func LoadDir(fset *token.FileSet, dir, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		names = append(names, e.Name())
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)
	pkg := &Package{Path: path, Dir: dir, Fset: fset}
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %w", filepath.Join(dir, name), err)
		}
		if pkg.Name == "" && !strings.HasSuffix(f.Name.Name, "_test") {
			pkg.Name = f.Name.Name
		}
		pkg.Files = append(pkg.Files, f)
	}
	if pkg.Name == "" { // directory holds only an external test package
		pkg.Name = pkg.Files[0].Name.Name
	}
	return pkg, nil
}

// LoadTree walks root recursively and loads every package under it,
// skipping testdata, hidden directories, and any directory for which skip
// returns true. Paths are reported relative to root.
func LoadTree(fset *token.FileSet, root string, skip func(rel string) bool) ([]*Package, error) {
	var pkgs []*Package
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		rel, err := filepath.Rel(root, p)
		if err != nil {
			return err
		}
		base := filepath.Base(p)
		if rel != "." && (base == "testdata" || strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_")) {
			return filepath.SkipDir
		}
		if skip != nil && skip(rel) {
			return filepath.SkipDir
		}
		path := filepath.ToSlash(rel)
		if path == "." {
			path = ""
		}
		pkg, err := LoadDir(fset, p, path)
		if err != nil {
			return err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
		return nil
	})
	return pkgs, err
}

// ImportName returns the local name under which file f imports the package
// with the given import path, or "" if f does not import it. The default
// name (last path element) is returned for unnamed imports; "_" and "."
// imports return their literal names.
func ImportName(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if p != path {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		if i := strings.LastIndex(p, "/"); i >= 0 {
			return p[i+1:]
		}
		return p
	}
	return ""
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Package is one directory's worth of parsed, type-checked Go source: the
// unit analyzers run over. All files in the directory — implementation,
// in-package tests, and external (package foo_test) tests — appear in
// Files so comment-driven machinery (suppressions, `// want`) sees
// everything, while type checking happens in the two real compilation
// units and is merged into one Info.
type Package struct {
	// Name is the non-test package clause name.
	Name string
	// Path is the module-relative import path ("" for the module root);
	// analyzers use it for scoping rules. In analysistest runs it is the
	// path under testdata/src.
	Path string
	// Dir is the absolute directory.
	Dir string
	// Fset is the file set all Files were parsed into.
	Fset *token.FileSet
	// Files are the parsed files, comments included, sorted by filename.
	Files []*ast.File
	// TypesPkg is the type-checked primary unit (non-test files plus
	// in-package tests). May be non-nil even when TypeErrors is not
	// empty: go/types recovers what it can.
	TypesPkg *types.Package
	// Info holds the merged type information for every file in Files.
	Info *types.Info
	// TypeErrors collects parse and type-check failures for this
	// directory; the driver reports them as diagnostics.
	TypeErrors []error

	primary  []*ast.File // the primary compilation unit
	xtest    []*ast.File // the external test unit (package foo_test)
	xtestPkg *types.Package
}

// ImportName returns the local name under which file f imports the package
// with the given import path, or "" if f does not import it. The default
// name (last path element) is returned for unnamed imports; "_" and "."
// imports return their literal names.
func ImportName(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if p != path {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		if i := strings.LastIndex(p, "/"); i >= 0 {
			return p[i+1:]
		}
		return p
	}
	return ""
}

// Package errsink defines an analyzer enforcing must-check errors on the
// crash-safety surface: the calls whose error (or interrupt) result is the
// only signal that durability or cancellation failed. Discarding them
// turns a crash-safety mechanism into a silent no-op — a journal whose
// Close error vanishes can lose the very records the kill -9 resume test
// depends on.
//
// The must-check set (see DESIGN.md §13):
//
//   - experiments.Journal.Record and Close — the fsync'd batch journal
//   - (*os.File).Sync — every fsync path
//   - runctl.Control.Check — the returned *Interrupt is the deadline/
//     cancellation verdict; dropping it keeps a dead job running
//   - checkpoint.WriteFile — the durable snapshot a crash resume replays
//     from; a dropped error means the resume silently starts from stale
//     or missing state
//
// A call is "discarded" when it stands alone as a statement, is deferred
// or spawned (`defer j.Close()`, `go j.Close()`), or is assigned entirely
// to blank identifiers (`_ = f.Sync()`). Explicitly intended discards must
// carry an `//uvmlint:ignore errsink -- <justification>` instead.
//
// Test files are exempt: tests exercise error paths deliberately and their
// durability is not the daemon's.
package errsink

import (
	"go/ast"
	"strings"

	"uvmdiscard/internal/analysis"
)

// Analyzer is the errsink pass.
var Analyzer = &analysis.Analyzer{
	Name: "errsink",
	Doc: "require the results of crash-safety calls (journal Record/Close, " +
		"file Sync, runctl Check) to be consumed, not discarded",
	Run: run,
}

// mustCheck lists the crash-safety calls by package path, receiver type,
// and name. An empty recv marks a package-level function rather than a
// method.
var mustCheck = []struct{ pkg, recv, name, why string }{
	{"uvmdiscard/internal/experiments", "Journal", "Record", "a dropped journal write breaks crash-safe resume"},
	{"uvmdiscard/internal/experiments", "Journal", "Close", "a dropped close can lose buffered journal state"},
	{"uvmdiscard/internal/jsonl", "Appender", "Append", "an unchecked append breaks the durable log's crash-safety contract"},
	{"uvmdiscard/internal/jsonl", "Appender", "Close", "a dropped close can lose buffered log state"},
	{"os", "File", "Sync", "an unchecked fsync is not durable"},
	{"uvmdiscard/internal/runctl", "Control", "Check", "the *Interrupt is the cancellation verdict; dropping it keeps a dead job running"},
	{"uvmdiscard/internal/checkpoint", "", "WriteFile", "a dropped snapshot write means a crash resume replays stale or missing state"},
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		pos := pass.Fset.Position(f.Pos())
		if strings.HasSuffix(pos.Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			var how string
			switch st := n.(type) {
			case *ast.ExprStmt:
				call, _ = st.X.(*ast.CallExpr)
				how = "discarded"
			case *ast.DeferStmt:
				call = st.Call
				how = "discarded by defer"
			case *ast.GoStmt:
				call = st.Call
				how = "discarded by go"
			case *ast.AssignStmt:
				if len(st.Rhs) != 1 || !allBlank(st.Lhs) {
					return true
				}
				call, _ = st.Rhs[0].(*ast.CallExpr)
				how = "assigned to _"
			default:
				return true
			}
			if call == nil {
				return true
			}
			fn := analysis.Callee(pass.TypesInfo, call)
			if fn == nil {
				return true
			}
			recv := analysis.ReceiverNamed(fn)
			for _, m := range mustCheck {
				if fn.Name() != m.name {
					continue
				}
				if m.recv == "" {
					if !analysis.IsPkgFunc(fn, m.pkg, m.name) {
						continue
					}
					pass.Reportf(call.Pos(),
						"result of %s.%s %s: %s — handle it or suppress with a justification",
						shortPkg(m.pkg), m.name, how, m.why)
					break
				}
				if recv != nil && recv.Obj().Name() == m.recv &&
					analysis.ObjPkgPath(recv.Obj()) == m.pkg {
					pass.Reportf(call.Pos(),
						"result of (%s.%s).%s %s: %s — handle it or suppress with a justification",
						shortPkg(m.pkg), m.recv, m.name, how, m.why)
					break
				}
			}
			return true
		})
	}
	return nil
}

func allBlank(exprs []ast.Expr) bool {
	for _, e := range exprs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

func shortPkg(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

package errsink_test

import (
	"testing"

	"uvmdiscard/internal/analysis/analysistest"
	"uvmdiscard/internal/analysis/errsink"
)

func TestErrsink(t *testing.T) {
	analysistest.Run(t, "testdata", errsink.Analyzer, "app")
}

// Package app seeds errsink violations against the real crash-safety
// surface: the experiments journal, fsync, the runctl interrupt check, and
// the checkpoint snapshot writer.
package app

import (
	"os"

	"uvmdiscard/internal/checkpoint"
	"uvmdiscard/internal/experiments"
	"uvmdiscard/internal/runctl"
	"uvmdiscard/internal/sim"
)

// Drop discards every crash-safety result in a different way.
func Drop(j *experiments.Journal, f *os.File, c *runctl.Control, r experiments.RunResult) {
	j.Record(r)      // want `result of \(experiments.Journal\).Record discarded`
	j.Close()        // want `result of \(experiments.Journal\).Close discarded`
	f.Sync()         // want `result of \(os.File\).Sync discarded`
	_ = f.Sync()     // want `result of \(os.File\).Sync assigned to _`
	c.Check("op", 0) // want `result of \(runctl.Control\).Check discarded`
	defer j.Close()  // want `result of \(experiments.Journal\).Close discarded by defer`

	checkpoint.WriteFile("x.ckpt", nil)     // want `result of checkpoint.WriteFile discarded`
	_ = checkpoint.WriteFile("x.ckpt", nil) // want `result of checkpoint.WriteFile assigned to _`
}

// Handle consumes every result; no findings.
func Handle(j *experiments.Journal, f *os.File, c *runctl.Control, r experiments.RunResult) error {
	if err := j.Record(r); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if i := c.Check("op", sim.Time(0)); i != nil {
		runctl.Abort(i)
	}
	if err := checkpoint.WriteFile("x.ckpt", nil); err != nil {
		return err
	}
	return j.Close()
}

// Suppressed documents a deliberate discard with the required
// justification.
func Suppressed(f *os.File) {
	//uvmlint:ignore errsink -- fixture: read-only file, sync result is advisory
	f.Sync()
}

// Unrelated types with the same method names stay quiet.
type fakeJournal struct{}

func (fakeJournal) Close() error { return nil }

func Quiet(j fakeJournal) {
	j.Close()
}

// A same-named local function is not the checkpoint writer.
func WriteFile(path string, blob []byte) error { return nil }

func QuietFunc() {
	WriteFile("x", nil)
}

// Package clean is the control: one finding, one want, one suppression
// that genuinely suppresses.
package clean

func trigger() {}

func f() {
	trigger() // want "stub finding"
	trigger() //uvmlint:ignore stubonce -- fixture: prove suppression works
}

// Package suppressed expects a diagnostic on a line where a suppression
// removes it — the harness must reject that, not silently pass.
package suppressed

func trigger() {}

func f() {
	trigger() //uvmlint:ignore stubonce -- deliberately silenced // want "stub finding"
}

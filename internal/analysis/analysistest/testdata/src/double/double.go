// Package double provokes the stub analyzer into reporting the same
// message twice on one line that only expects it once.
package double

func trigger() {}

func f() {
	trigger() // want "stub finding"
}

// Package analysistest runs an analyzer over packages under a testdata
// directory and checks its diagnostics against `// want "regexp"`
// expectations in the source, mirroring the x/tools package of the same
// name (see internal/analysis for why this is a local reimplementation).
//
// Layout: testdata/src/<pkgpath>/*.go, where <pkgpath> is the package path
// the analyzer sees — so scoping rules (e.g. "only under internal/") can be
// exercised by naming the test package accordingly.
//
// A `// want "re1" "re2"` comment at the end of a line expects one
// diagnostic matching each regexp on that line; lines without a want
// comment expect no diagnostics.
package analysistest

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"uvmdiscard/internal/analysis"
)

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)
var quotedRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// Run loads each package path from testdata/src, applies the analyzer, and
// reports unexpected or missing diagnostics through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	fset := token.NewFileSet()
	var pkgs []*analysis.Package
	for _, path := range pkgPaths {
		dir := filepath.Join(testdata, "src", filepath.FromSlash(path))
		pkg, err := analysis.LoadDir(fset, dir, path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		if pkg == nil {
			t.Fatalf("no Go files in %s", dir)
		}
		pkgs = append(pkgs, pkg)
	}
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	type key struct {
		file string
		line int
	}
	// Collect expectations from the sources.
	wants := map[key][]*regexp.Regexp{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := fset.Position(c.Pos())
					k := key{pos.Filename, pos.Line}
					for _, q := range quotedRe.FindAllStringSubmatch(m[1], -1) {
						re, err := regexp.Compile(q[1])
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", pos, q[1], err)
						}
						wants[k] = append(wants[k], re)
					}
				}
			}
		}
	}

	// Match diagnostics against expectations.
	for _, d := range diags {
		k := key{d.Position.Filename, d.Position.Line}
		matched := false
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				wants[k] = append(wants[k][:i], wants[k][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none",
				relToTestdata(testdata, k.file), k.line, re)
		}
	}
}

func relToTestdata(testdata, file string) string {
	if rel, err := filepath.Rel(testdata, file); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return file
}

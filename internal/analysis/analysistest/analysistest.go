// Package analysistest runs an analyzer over type-checked packages under a
// testdata directory and checks its diagnostics against `// want "regexp"`
// expectations in the source, mirroring the x/tools package of the same
// name (see internal/analysis for why this is a local reimplementation).
//
// Layout: testdata/src/<pkgpath>/*.go, where <pkgpath> is the package path
// the analyzer sees — so scoping rules (e.g. "only under internal/") can be
// exercised by naming the test package accordingly. Testdata packages are
// fully type-checked: they may import the standard library, real module
// packages ("uvmdiscard/..."), and each other (by their testdata package
// path), so typed analyzers and cross-package facts behave exactly as they
// do over the real module. List dependency packages before their importers
// in pkgPaths so facts are exported before they are needed.
//
// A `// want "re1" "re2"` comment at the end of a line expects one
// diagnostic matching each regexp on that line; lines without a want
// comment expect no diagnostics. Matching is one-to-one and strict:
//
//   - every diagnostic must be claimed by exactly one want on its line —
//     a second diagnostic matching an already-satisfied want is an error,
//     not a silent double count;
//   - a diagnostic removed by an //uvmlint:ignore suppression cannot
//     satisfy a want — expecting a suppressed finding is an error that
//     names the suppression, so tests cannot pass by accident.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"uvmdiscard/internal/analysis"
)

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// quotedRe accepts both double-quoted regexps (backslash escapes allowed)
// and backtick-quoted regexps (taken verbatim — the convenient form when
// the expectation itself contains backslashes or quotes).
var quotedRe = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// Run loads each package path from testdata/src (type-checked against the
// enclosing module), applies the analyzer, and reports unexpected or
// missing diagnostics through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	for _, e := range run(testdata, a, pkgPaths...) {
		t.Error(e)
	}
}

// run is Run with errors returned as strings instead of reported, so the
// harness's own failure modes are testable.
func run(testdata string, a *analysis.Analyzer, pkgPaths ...string) []string {
	abs, err := filepath.Abs(testdata)
	if err != nil {
		return []string{err.Error()}
	}
	root, err := analysis.ModuleRoot(abs)
	if err != nil {
		return []string{err.Error()}
	}
	// A path with a directory under testdata/src is an overlay package; a
	// path without one is a real module package, loaded from the module
	// itself — list those too when the analyzer under test needs their
	// exported facts (or to assert they are finding-free).
	extra := map[string]string{}
	for _, path := range pkgPaths {
		dir := filepath.Join(abs, "src", filepath.FromSlash(path))
		if _, err := os.Stat(dir); err == nil {
			extra[path] = dir
		}
	}
	loader, err := analysis.NewLoader(root, extra)
	if err != nil {
		return []string{err.Error()}
	}
	pkgs, err := loader.LoadPackages(pkgPaths...)
	if err != nil {
		return []string{err.Error()}
	}
	kept, suppressed, err := analysis.RunDetailed(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		return []string{err.Error()}
	}

	type key struct {
		file string
		line int
	}
	type want struct {
		re       *regexp.Regexp
		consumed bool
	}
	// Collect expectations from the sources.
	wants := map[key][]*want{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := loader.Fset.Position(c.Pos())
					k := key{pos.Filename, pos.Line}
					for _, q := range quotedRe.FindAllStringSubmatch(m[1], -1) {
						expr := q[1]
						if q[2] != "" {
							expr = q[2]
						}
						re, err := regexp.Compile(expr)
						if err != nil {
							return []string{pos.String() + ": bad want regexp " + expr + ": " + err.Error()}
						}
						wants[k] = append(wants[k], &want{re: re})
					}
				}
			}
		}
	}

	var errs []string
	errorf := func(format string, args ...any) {
		errs = append(errs, fmt.Sprintf(format, args...))
	}

	// Match diagnostics one-to-one against expectations.
	for _, d := range kept {
		k := key{d.Position.Filename, d.Position.Line}
		var already *want
		claimed := false
		for _, w := range wants[k] {
			if !w.re.MatchString(d.Message) {
				continue
			}
			if w.consumed {
				already = w
				continue
			}
			w.consumed = true
			claimed = true
			break
		}
		switch {
		case claimed:
		case already != nil:
			errorf("%s: diagnostic matches // want %q more than once (each want matches exactly one diagnostic): %s",
				relToTestdata(testdata, d.Position.Filename), already.re, d)
		default:
			errorf("unexpected diagnostic: %s", d)
		}
	}

	// Unconsumed wants: distinguish "suppressed" from "absent".
	for k, ws := range wants {
		for _, w := range ws {
			if w.consumed {
				continue
			}
			bySuppression := false
			for _, d := range suppressed {
				if d.Position.Filename == k.file && d.Position.Line == k.line && w.re.MatchString(d.Message) {
					bySuppression = true
					break
				}
			}
			if bySuppression {
				errorf("%s:%d: diagnostic matching %q was removed by an //uvmlint:ignore suppression; a suppressed diagnostic does not satisfy // want",
					relToTestdata(testdata, k.file), k.line, w.re)
			} else {
				errorf("%s:%d: expected diagnostic matching %q, got none",
					relToTestdata(testdata, k.file), k.line, w.re)
			}
		}
	}
	return errs
}

func relToTestdata(testdata, file string) string {
	if rel, err := filepath.Rel(testdata, file); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return file
}

package analysistest

import (
	"go/ast"
	"strings"
	"testing"

	"uvmdiscard/internal/analysis"
)

// stub reports "stub finding" n times at every call to a function named
// trigger — a minimal analyzer for exercising the harness's own matching
// rules.
func stub(name string, n int) *analysis.Analyzer {
	a := &analysis.Analyzer{Name: name, Doc: "test stub"}
	a.Run = func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(node ast.Node) bool {
				call, ok := node.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "trigger" {
					for i := 0; i < n; i++ {
						pass.Reportf(call.Pos(), "stub finding")
					}
				}
				return true
			})
		}
		return nil
	}
	return a
}

// The control: one finding per want, suppressions suppress — no errors.
func TestHarnessCleanMatch(t *testing.T) {
	if errs := run("testdata", stub("stubonce", 1), "clean"); len(errs) != 0 {
		t.Fatalf("clean fixture produced errors: %v", errs)
	}
}

// A want expectation satisfied twice is an error: each `// want` matches
// exactly one diagnostic, so a doubled report cannot hide behind a single
// expectation.
func TestHarnessRejectsDoubleMatchedWant(t *testing.T) {
	errs := run("testdata", stub("stubtwice", 2), "double")
	if len(errs) != 1 {
		t.Fatalf("want exactly 1 error, got %d: %v", len(errs), errs)
	}
	if !strings.Contains(errs[0], "more than once") {
		t.Fatalf("error does not name the double match: %s", errs[0])
	}
}

// A diagnostic removed by //uvmlint:ignore must not satisfy a want: the
// harness has to say the expectation was met only by a suppressed finding.
func TestHarnessRejectsSuppressedMatch(t *testing.T) {
	errs := run("testdata", stub("stubonce", 1), "suppressed")
	if len(errs) != 1 {
		t.Fatalf("want exactly 1 error, got %d: %v", len(errs), errs)
	}
	if !strings.Contains(errs[0], "suppress") {
		t.Fatalf("error does not mention the suppression: %s", errs[0])
	}
}

// Package locklow is the bottom of a cross-package lock-order cycle: it
// owns Store.Mu and exports a method that acquires it, whose FnLocks fact
// carries the acquisition upward to importing packages.
package locklow

import "sync"

type Store struct {
	Mu sync.Mutex
	n  int
}

// Bump acquires Store.Mu; callers holding other locks inherit this edge.
func (s *Store) Bump() {
	s.Mu.Lock()
	defer s.Mu.Unlock()
	s.n++
}

// Package lockmid holds Pool.Mu while calling into locklow — one half of
// a cycle whose other half lives in lockhigh. Neither package alone is
// wrong; only the module-wide union of edges shows the deadlock.
package lockmid

import (
	"sync"

	"locklow"
)

type Pool struct {
	Mu sync.Mutex
	S  *locklow.Store
}

// Fill acquires Pool.Mu then (through Bump's exported fact) Store.Mu.
func (p *Pool) Fill() {
	p.Mu.Lock()
	defer p.Mu.Unlock()
	p.S.Bump() // want `lock ordering cycle: locklow\.Store\.Mu -> lockmid\.Pool\.Mu -> locklow\.Store\.Mu`
}

// Package lockhigh closes the cross-package cycle: it acquires Store.Mu
// then Pool.Mu, the opposite of lockmid.Fill's order. The diagnostic is
// reported at the edge that closes the cycle (in lockmid).
package lockhigh

import (
	"locklow"
	"lockmid"
)

// Drain acquires Store.Mu then Pool.Mu.
func Drain(s *locklow.Store, p *lockmid.Pool) {
	s.Mu.Lock()
	defer s.Mu.Unlock()
	p.Mu.Lock()
	p.Mu.Unlock()
}

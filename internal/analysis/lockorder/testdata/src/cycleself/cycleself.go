// Package cycleself seeds the self-deadlock: a method re-enters another
// locking method of the same type while holding the lock.
package cycleself

import "sync"

type S struct {
	mu sync.Mutex
	n  int
}

func (s *S) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Sum holds s.mu and calls Len, which locks it again: sync.Mutex is not
// reentrant, so this deadlocks the moment Sum runs.
func (s *S) Sum() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n + s.Len() // want `cycleself\.S\.mu is acquired while already held`
}

// Package cyclea seeds the classic intra-package ABBA deadlock: One
// acquires P then Q, Two acquires Q then (through a helper) P.
package cyclea

import "sync"

type P struct{ mu sync.Mutex }

type Q struct{ mu sync.Mutex }

// One acquires P then Q. The early-unlock branch must stay branch-local:
// on the fallthrough path p.mu is still held when q.mu is acquired.
func One(p *P, q *Q, skip bool) {
	p.mu.Lock()
	if skip {
		p.mu.Unlock()
		return
	}
	q.mu.Lock()
	q.mu.Unlock()
	p.mu.Unlock()
}

func lockP(p *P) {
	p.mu.Lock()
	p.mu.Unlock()
}

// Two acquires Q then P — through lockP, so the edge comes from the
// intra-package transitive-acquire fixpoint, not a literal Lock call.
func Two(p *P, q *Q) {
	q.mu.Lock()
	defer q.mu.Unlock()
	lockP(p) // want `lock ordering cycle: cyclea\.P\.mu -> cyclea\.Q\.mu -> cyclea\.P\.mu`
}

// Package lockclean acquires its two locks in the same order everywhere
// and spawns a locking goroutine — none of which is a cycle, and the
// goroutine's lock must not be attributed to the spawner's held set.
package lockclean

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

func First(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock()
	b.mu.Unlock()
}

func Second(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

// Spawn holds b.mu while starting a goroutine that locks a.mu. The
// goroutine does not run under b.mu, so this is not a B -> A edge — if it
// were, First/Second's A -> B order would falsely become a cycle.
func Spawn(a *A, b *B, wg *sync.WaitGroup) {
	b.mu.Lock()
	defer b.mu.Unlock()
	wg.Add(1)
	go func() {
		defer wg.Done()
		a.mu.Lock()
		a.mu.Unlock()
	}()
}

// Package lockorder defines a module-wide analyzer that builds the mutex
// acquisition-order graph and reports cycles. An edge A → B means "some
// function acquires B while holding A"; a cycle means two executions can
// acquire the same pair of locks in opposite orders — the classic ABBA
// deadlock, which no single-package review catches when the two halves of
// the cycle live in different packages (say, internal/service holding its
// own lock while folding a run into a metrics.Collector, and a metrics
// callback reaching back into the service).
//
// Locks are identified by declaration site, not instance: the label for
// `s.mu.Lock()` is `service.Server.mu`. This is coarser than instance
// tracking but it is the granularity ordering disciplines are written in,
// and it lets edges from different packages join into one graph.
//
// Per function, a flow-ordered walk tracks the held set: Lock/RLock push a
// label, Unlock/RUnlock pop it, a deferred Unlock keeps the label held to
// the end of the function, and branch bodies get a copy of the held set so
// an early-return Unlock does not leak into the fallthrough path. Calls
// made while holding locks contribute edges to every lock the callee may
// transitively acquire — computed by an intra-package fixpoint and carried
// across package boundaries as exported FnLocks facts (packages are
// analyzed in dependency order, so callee facts exist before callers need
// them). A `go` statement starts with an empty held set: the spawned
// goroutine does not inherit the spawner's locks.
//
// The Finish hook unions every package's edges and reports each cycle
// once, including the self-edge case (acquiring a lock's label while
// already holding it — a real deadlock when both acquisitions can hit the
// same instance, and an ordering hazard between two instances otherwise).
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"uvmdiscard/internal/analysis"
)

// Analyzer is the lockorder pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "build the module-wide mutex acquisition graph and report ordering " +
		"cycles (ABBA deadlocks), including across packages",
	Run:    run,
	Finish: finish,
}

// FnLocks is the object fact exported for every function that may acquire
// locks, directly or through its callees: the set of lock labels.
type FnLocks struct {
	Acquires []string
}

// Edge records "To was acquired at Pos while From was held".
type Edge struct {
	From, To string
	Pos      token.Pos
}

// PkgLocks is the package fact carrying the acquisition edges observed in
// one package; Finish unions them module-wide.
type PkgLocks struct {
	Edges []Edge
}

// heldLock is one entry of the walker's held-set.
type heldLock struct {
	label string
}

// callRec is a static call made while holding locks.
type callRec struct {
	fn   *types.Func
	held []string
	pos  token.Pos
}

// fnSummary is what one walk unit produced: a declared function, or the
// body of a go-spawned literal (fn is nil there — its locks are real for
// edge purposes but must not be attributed to the spawner, which never
// holds them).
type fnSummary struct {
	fn     *types.Func
	direct map[string]bool
	calls  []callRec
}

func run(pass *analysis.Pass) error {
	var edges []Edge
	st := &state{pass: pass, edges: &edges}

	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			s := st.newSummary(fn)
			w := &walker{pass: pass, st: st, sum: s}
			w.block(fd.Body.List)
		}
	}

	// Transitive acquires: start from each unit's direct set and fold in
	// callee sets to a fixpoint. Cross-package callees contribute through
	// facts exported when their package was analyzed.
	acquires := map[*fnSummary]map[string]bool{}
	for _, s := range st.summaries {
		set := map[string]bool{}
		for l := range s.direct {
			set[l] = true
		}
		acquires[s] = set
	}
	calleeAcquires := func(fn *types.Func) []string {
		if s, ok := st.byFn[fn]; ok {
			return sortedKeys(acquires[s])
		}
		var fact FnLocks
		if pass.ImportObjectFact(fn, &fact) {
			return fact.Acquires
		}
		return nil
	}
	for changed := true; changed; {
		changed = false
		for _, s := range st.summaries {
			set := acquires[s]
			for _, c := range s.calls {
				for _, l := range calleeAcquires(c.fn) {
					if !set[l] {
						set[l] = true
						changed = true
					}
				}
			}
		}
	}

	// Edges from calls: every lock the callee may acquire, acquired under
	// every lock held at the call site.
	for _, s := range st.summaries {
		for _, c := range s.calls {
			if len(c.held) == 0 {
				continue
			}
			for _, to := range calleeAcquires(c.fn) {
				for _, from := range c.held {
					edges = append(edges, Edge{From: from, To: to, Pos: c.pos})
				}
			}
		}
	}

	for _, s := range st.summaries {
		if s.fn == nil {
			continue
		}
		if set := acquires[s]; len(set) > 0 {
			pass.ExportObjectFact(s.fn, &FnLocks{Acquires: sortedKeys(set)})
		}
	}
	pass.ExportPackageFact(&PkgLocks{Edges: dedupeEdges(edges)})
	return nil
}

// finish unions every package's edges and reports each distinct cycle once.
func finish(mp *analysis.ModulePass) error {
	var edges []Edge
	for _, pkg := range mp.Packages {
		if pkg.TypesPkg == nil {
			continue
		}
		var pl PkgLocks
		if mp.ImportPackageFact(pkg.TypesPkg, &pl) {
			edges = append(edges, pl.Edges...)
		}
	}
	edges = dedupeEdges(edges)

	next := map[string][]string{}
	at := map[[2]string]token.Pos{}
	for _, e := range edges {
		next[e.From] = append(next[e.From], e.To)
		at[[2]string{e.From, e.To}] = e.Pos
	}
	nodes := make([]string, 0, len(next))
	for n := range next {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, tos := range next {
		sort.Strings(tos)
	}

	// DFS with an explicit stack; a back edge into the current path closes
	// a cycle. Each cycle is canonicalized (rotated to its smallest label)
	// so it is reported exactly once no matter where the DFS entered it.
	seen := map[string]bool{}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var path []string
	var dfs func(n string)
	dfs = func(n string) {
		color[n] = gray
		path = append(path, n)
		for _, m := range next[n] {
			if color[m] == gray {
				// Extract the cycle m ... n from the path.
				i := len(path) - 1
				for i >= 0 && path[i] != m {
					i--
				}
				cycle := append([]string(nil), path[i:]...)
				canon := canonical(cycle)
				if !seen[canon] {
					seen[canon] = true
					report(mp, cycle, at)
				}
				continue
			}
			if color[m] == white {
				dfs(m)
			}
		}
		path = path[:len(path)-1]
		color[n] = black
	}
	for _, n := range nodes {
		if color[n] == white {
			dfs(n)
		}
	}
	return nil
}

// report emits one cycle, anchored at the edge that closes it.
func report(mp *analysis.ModulePass, cycle []string, at map[[2]string]token.Pos) {
	closing := [2]string{cycle[len(cycle)-1], cycle[0]}
	pos := at[closing]
	if len(cycle) == 1 {
		mp.Reportf(pos,
			"lock ordering cycle: %s is acquired while already held — deadlock if both acquisitions reach the same instance",
			cycle[0])
		return
	}
	mp.Reportf(pos,
		"lock ordering cycle: %s — opposite acquisition orders can deadlock; pick one order and hold to it",
		strings.Join(append(append([]string(nil), cycle...), cycle[0]), " -> "))
}

// canonical rotates a cycle so its lexically smallest label leads, giving
// every entry point into the same cycle the same key.
func canonical(cycle []string) string {
	min := 0
	for i, l := range cycle {
		if l < cycle[min] {
			min = i
		}
	}
	rot := append(append([]string(nil), cycle[min:]...), cycle[:min]...)
	return strings.Join(rot, "->")
}

// state is the per-package accumulation shared by all walkers.
type state struct {
	pass      *analysis.Pass
	edges     *[]Edge
	summaries []*fnSummary
	byFn      map[*types.Func]*fnSummary
}

func (st *state) newSummary(fn *types.Func) *fnSummary {
	s := &fnSummary{fn: fn, direct: map[string]bool{}}
	st.summaries = append(st.summaries, s)
	if fn != nil {
		if st.byFn == nil {
			st.byFn = map[*types.Func]*fnSummary{}
		}
		st.byFn[fn] = s
	}
	return s
}

// walker performs the flow-ordered held-set walk over one function body.
type walker struct {
	pass *analysis.Pass
	st   *state
	sum  *fnSummary
	held []heldLock
}

func (w *walker) block(stmts []ast.Stmt) {
	for _, s := range stmts {
		w.stmt(s)
	}
}

// branch runs s against a copy of the held set: what a conditional path
// locks or unlocks must not leak into the fallthrough path.
func (w *walker) branch(s ast.Stmt) {
	saved := append([]heldLock(nil), w.held...)
	w.stmt(s)
	w.held = saved
}

func (w *walker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.expr(s.X)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e)
		}
		for _, e := range s.Lhs {
			w.expr(e)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.expr(e)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.expr(s.Cond)
		w.branch(s.Body)
		if s.Else != nil {
			w.branch(s.Else)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Cond != nil {
			w.expr(s.Cond)
		}
		w.branch(s.Body)
	case *ast.RangeStmt:
		w.expr(s.X)
		w.branch(s.Body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Tag != nil {
			w.expr(s.Tag)
		}
		for _, c := range s.Body.List {
			w.branch(c)
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.stmt(s.Assign)
		for _, c := range s.Body.List {
			w.branch(c)
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			w.branch(c)
		}
	case *ast.CaseClause:
		for _, e := range s.List {
			w.expr(e)
		}
		w.block(s.Body)
	case *ast.CommClause:
		if s.Comm != nil {
			w.stmt(s.Comm)
		}
		w.block(s.Body)
	case *ast.BlockStmt:
		w.block(s.List)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.DeferStmt:
		// A deferred Unlock releases at return: the lock stays held for the
		// rest of the walk, which is the point of the pattern. Any other
		// deferred call runs with whatever is held at return; approximating
		// that as "the current held set" errs toward reporting.
		if w.mutexOp(s.Call) == opNone {
			w.handleCall(s.Call, w.heldLabels())
			for _, a := range s.Call.Args {
				w.expr(a)
			}
		}
	case *ast.GoStmt:
		// The spawned goroutine holds nothing, whatever the spawner holds,
		// and nothing it locks is held by the spawner — so its body is
		// walked as a separate unit whose locks never enter the spawner's
		// acquire set. Its args evaluate in the spawner, though.
		for _, a := range s.Call.Args {
			w.expr(a)
		}
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			gw := &walker{pass: w.pass, st: w.st, sum: w.st.newSummary(nil)}
			gw.block(lit.Body.List)
		}
	case *ast.SendStmt:
		w.expr(s.Chan)
		w.expr(s.Value)
	case *ast.IncDecStmt:
		w.expr(s.X)
	}
}

// expr finds calls (and func literals) inside an expression.
func (w *walker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			// A literal may run now (immediate call) or later (stored); we
			// walk it under the current held set, branch-style.
			saved := append([]heldLock(nil), w.held...)
			w.block(x.Body.List)
			w.held = saved
			return false
		case *ast.CallExpr:
			switch w.mutexOp(x) {
			case opLock:
				if label := w.lockLabel(x); label != "" {
					for _, h := range w.held {
						*w.st.edges = append(*w.st.edges, Edge{From: h.label, To: label, Pos: x.Pos()})
					}
					w.held = append(w.held, heldLock{label: label})
					w.sum.direct[label] = true
				}
			case opUnlock:
				if label := w.lockLabel(x); label != "" {
					for i := len(w.held) - 1; i >= 0; i-- {
						if w.held[i].label == label {
							w.held = append(w.held[:i:i], w.held[i+1:]...)
							break
						}
					}
				}
			default:
				w.handleCall(x, w.heldLabels())
			}
		}
		return true
	})
}

func (w *walker) heldLabels() []string {
	if len(w.held) == 0 {
		return nil
	}
	out := make([]string, len(w.held))
	for i, h := range w.held {
		out[i] = h.label
	}
	return out
}

// handleCall records a static call for the fixpoint; dynamic calls carry
// no lock information and are skipped.
func (w *walker) handleCall(c *ast.CallExpr, held []string) {
	fn := analysis.Callee(w.pass.TypesInfo, c)
	if fn == nil {
		return
	}
	w.sum.calls = append(w.sum.calls, callRec{fn: fn, held: held, pos: c.Pos()})
}

type mutexOp int

const (
	opNone mutexOp = iota
	opLock
	opUnlock
)

// mutexOp classifies c as a sync.Mutex/RWMutex (un)lock, or not.
func (w *walker) mutexOp(c *ast.CallExpr) mutexOp {
	fn := analysis.Callee(w.pass.TypesInfo, c)
	if fn == nil {
		return opNone
	}
	recv := analysis.ReceiverNamed(fn)
	if recv == nil || analysis.ObjPkgPath(recv.Obj()) != "sync" {
		return opNone
	}
	if name := recv.Obj().Name(); name != "Mutex" && name != "RWMutex" {
		return opNone
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return opLock
	case "Unlock", "RUnlock":
		return opUnlock
	}
	return opNone
}

// lockLabel names the lock a (un)lock call operates on by its declaration
// site: `pkg.Type.field` for a struct-field mutex, `pkg.var` for a
// package- or function-level mutex variable. Shapes that cannot be named
// (an element of a mutex slice, say) return "" and are not tracked.
func (w *walker) lockLabel(c *ast.CallExpr) string {
	sel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	switch recv := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		// x.mu.Lock(): name the field by its owning named type.
		if s, ok := w.pass.TypesInfo.Selections[recv]; ok && s.Kind() == types.FieldVal {
			if owner := analysis.NamedOf(s.Recv()); owner != nil {
				return fmt.Sprintf("%s.%s.%s",
					shortPkg(analysis.ObjPkgPath(owner.Obj())), owner.Obj().Name(), recv.Sel.Name)
			}
		}
		// Qualified package-level var: pkg.someMu.Lock().
		if obj, ok := w.pass.TypesInfo.Uses[recv.Sel].(*types.Var); ok && obj.Pkg() != nil {
			return shortPkg(obj.Pkg().Path()) + "." + obj.Name()
		}
	case *ast.Ident:
		if obj, ok := w.pass.TypesInfo.Uses[recv].(*types.Var); ok && obj.Pkg() != nil {
			return shortPkg(obj.Pkg().Path()) + "." + obj.Name()
		}
	}
	return ""
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func dedupeEdges(edges []Edge) []Edge {
	seen := map[[2]string]bool{}
	var out []Edge
	for _, e := range edges {
		k := [2]string{e.From, e.To}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

func shortPkg(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

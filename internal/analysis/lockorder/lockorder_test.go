package lockorder_test

import (
	"testing"

	"uvmdiscard/internal/analysis/analysistest"
	"uvmdiscard/internal/analysis/lockorder"
)

func TestLockorder(t *testing.T) {
	analysistest.Run(t, "testdata", lockorder.Analyzer,
		"cyclea", "cycleself", "locklow", "lockmid", "lockhigh", "lockclean")
}

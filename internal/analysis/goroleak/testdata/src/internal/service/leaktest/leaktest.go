// Package leaktest seeds goroleak violations: goroutines with and without
// a tie to context, WaitGroup, or channels.
package leaktest

import (
	"context"
	"sync"
)

func work() {}

// spin is an untied loop; spawning it leaks.
func spin() {
	for {
		work()
	}
}

// consume drains a channel; spawning it is fine.
func consume(c chan int) {
	for range c {
		work()
	}
}

type pump struct {
	q chan int
}

// run ranges over the pump's channel, so `go p.run()` is tied.
func (p *pump) run() {
	for range p.q {
		work()
	}
}

func Spawn(ctx context.Context, wg *sync.WaitGroup, c chan int, fn func(context.Context)) {
	go func() { work() }() // want `goroutine is not tied to a context.Context, sync.WaitGroup, or channel`
	go spin()              // want `goroutine runs spin, which is not tied`

	go func() { <-ctx.Done() }()
	go func() {
		defer wg.Done()
		work()
	}()
	go func() { c <- 1 }()
	go func() { close(c) }()
	go consume(c)

	p := &pump{q: c}
	go p.run()

	// The callee is a function value — unresolvable — but the spawn site
	// hands it the context, which is tie enough.
	go fn(ctx)

	// Same function value without the context: nothing proves it drains.
	var leak func()
	leak = work
	go leak() // want `goroutine body cannot be resolved within leaktest`

	//uvmlint:ignore goroleak -- fixture: fire-and-forget by design, documented here
	go work()
}

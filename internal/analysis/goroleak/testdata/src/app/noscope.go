// Package app is outside the goroleak scope (not under internal/service,
// internal/runctl, or cmd/uvmsimd): even an obviously untied goroutine is
// not this pass's business here.
package app

func Leak() {
	go func() {
		for {
		}
	}()
}

// Package goroleak defines an analyzer enforcing that every goroutine in
// the control-plane packages (internal/service, internal/runctl,
// cmd/uvmsimd) is tied to some shutdown mechanism. A goroutine is "tied"
// when its body (or an argument at the spawn site) involves a
// context.Context, a sync.WaitGroup, or a channel operation — the three
// ways this codebase drains work: cancellation, Wait-based draining, and
// close-signalled exit. An untied goroutine outlives Shutdown silently,
// which is exactly the leak class the smoke harness's drain-window test
// exists to catch at runtime; this pass catches it at lint time.
//
// Resolution is intentionally shallow: a func literal is inspected
// directly, a named function or method spawned from the same package is
// inspected through its declaration, and anything else (cross-package
// callees, function values) must be tied at the spawn site — by passing a
// context, WaitGroup, or channel as an argument — or carry an
// `//uvmlint:ignore goroleak -- <justification>`.
//
// Test files are exempt: test goroutines die with the test process.
package goroleak

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"uvmdiscard/internal/analysis"
)

// Analyzer is the goroleak pass.
var Analyzer = &analysis.Analyzer{
	Name: "goroleak",
	Doc: "require goroutines in control-plane packages to be tied to a " +
		"context.Context, sync.WaitGroup, or channel so shutdown can drain them",
	Run: run,
}

// scope lists the package trees whose goroutines must be drainable: the
// uvmsimd daemon and the watchdog layer. Simulation code itself is
// synchronous by design (see simdet), so goroutines elsewhere are rare and
// not this pass's concern.
var scope = []string{"internal/service", "internal/runctl", "internal/fleet", "cmd/uvmsimd", "cmd/uvmfleet"}

func run(pass *analysis.Pass) error {
	if !inScope(pass.PkgPath) {
		return nil
	}
	decls := declsByFunc(pass)
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if gs, ok := n.(*ast.GoStmt); ok {
				checkGo(pass, decls, gs)
			}
			return true
		})
	}
	return nil
}

// declsByFunc maps every function and method declared in the package to
// its declaration, so `go s.worker()` can be checked through worker's body.
func declsByFunc(pass *analysis.Pass) map[*types.Func]*ast.FuncDecl {
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	return decls
}

func checkGo(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl, gs *ast.GoStmt) {
	call := gs.Call
	// An argument of a tying type at the spawn site is sufficient: the
	// spawned function received the means to observe shutdown, whether or
	// not we can see its body.
	for _, arg := range call.Args {
		if t := pass.TypesInfo.Types[arg].Type; t != nil && tiesType(t) {
			return
		}
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		if !tiedBody(pass, lit.Body) {
			pass.Reportf(gs.Pos(),
				"goroutine is not tied to a context.Context, sync.WaitGroup, or channel: shutdown cannot drain it")
		}
		return
	}
	if fn := analysis.Callee(pass.TypesInfo, call); fn != nil {
		if fd := decls[fn]; fd != nil && fd.Body != nil {
			if !tiedBody(pass, fd.Body) {
				pass.Reportf(gs.Pos(),
					"goroutine runs %s, which is not tied to a context.Context, sync.WaitGroup, or channel: shutdown cannot drain it",
					fn.Name())
			}
			return
		}
	}
	pass.Reportf(gs.Pos(),
		"goroutine body cannot be resolved within %s: pass a context.Context, sync.WaitGroup, or channel at the spawn site so shutdown can drain it",
		pass.PkgName)
}

// tiedBody reports whether body contains any shutdown tie: a reference to
// a context.Context or sync.WaitGroup value (including struct fields like
// s.workers), or a channel operation (send, receive, close, select, or
// range over a channel).
func tiedBody(pass *analysis.Pass, body *ast.BlockStmt) bool {
	tied := false
	ast.Inspect(body, func(n ast.Node) bool {
		if tied {
			return false
		}
		switch x := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			tied = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				tied = true
			}
		case *ast.RangeStmt:
			if t := pass.TypesInfo.Types[x.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					tied = true
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "close" {
					tied = true
				}
			}
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[x]
			if obj == nil {
				obj = pass.TypesInfo.Defs[x]
			}
			if obj != nil && obj.Type() != nil && tiesType(obj.Type()) {
				tied = true
			}
		}
		return !tied
	})
	return tied
}

// tiesType reports whether t (after pointer deref) is context.Context,
// sync.WaitGroup, or a channel.
func tiesType(t types.Type) bool {
	if analysis.IsNamed(t, "context", "Context") || analysis.IsNamed(t, "sync", "WaitGroup") {
		return true
	}
	u := types.Unalias(t)
	if p, ok := u.(*types.Pointer); ok {
		u = types.Unalias(p.Elem())
	}
	_, ok := u.Underlying().(*types.Chan)
	return ok
}

// inScope reports whether pkgPath is one of the control-plane trees.
func inScope(pkgPath string) bool {
	for _, s := range scope {
		if pkgPath == s || strings.HasPrefix(pkgPath, s+"/") {
			return true
		}
	}
	return false
}

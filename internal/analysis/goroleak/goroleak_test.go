package goroleak_test

import (
	"testing"

	"uvmdiscard/internal/analysis/analysistest"
	"uvmdiscard/internal/analysis/goroleak"
)

func TestGoroleak(t *testing.T) {
	analysistest.Run(t, "testdata", goroleak.Analyzer, "internal/service/leaktest", "app")
}

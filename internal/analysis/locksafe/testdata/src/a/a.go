// Package a seeds locksafe violations: Counter.n and Counter.last are
// guarded by mu; methods must lock or be named *Locked.
package a

import "sync"

// Counter is a guarded struct: fields after mu are protected by it.
type Counter struct {
	mu   sync.Mutex
	n    int
	last string
}

// Plain has no mutex; its fields are fair game.
type Plain struct {
	n int
}

// Add locks correctly.
func (c *Counter) Add(delta int, who string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n += delta
	c.last = who
}

// Get forgets the lock on both fields.
func (c *Counter) Get() (int, string) {
	return c.n, c.last // want "Counter.n is guarded" "Counter.last is guarded"
}

// addLocked is the caller-holds-mu convention; no finding.
func (c *Counter) addLocked(delta int) {
	c.n += delta
}

// Sum uses the helper under the lock; no direct guarded access here.
func (c *Counter) Sum(deltas []int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, d := range deltas {
		c.addLocked(d)
	}
}

// Mixed locks in one branch only — the analyzer is conservative and
// accepts any Lock call in the body, so this passes (vet-style linters
// accept the same; the race detector is the backstop).
func (c *Counter) Mixed(b bool) int {
	if b {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	return c.n
}

// Reader uses RLock on an RWMutex-guarded struct.
type Reader struct {
	mu sync.RWMutex
	v  int
}

// Load read-locks; fine.
func (r *Reader) Load() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.v
}

// Peek touches v with no lock.
func (r *Reader) Peek() int {
	return r.v // want "Reader.v is guarded"
}

// Bump is fine: Plain is not guarded.
func (p *Plain) Bump() { p.n++ }

// closure accesses count too.
func (c *Counter) Async() func() int {
	return func() int {
		return c.n // want "Counter.n is guarded"
	}
}

package a

import gosync "sync"

// Gauge is guarded even though sync is imported under another name — the
// typed pass recognizes the mutex by its type identity, not the import
// spelling (a false-negative class in the old syntax-only pass).
type Gauge struct {
	mu gosync.Mutex
	v  int
}

// Set locks; fine.
func (g *Gauge) Set(v int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.v = v
}

// PeekAliased reads the guarded field through a local alias of the
// receiver — invisible to the old pass, flagged by the typed one.
func (g *Gauge) PeekAliased() int {
	alias := g
	return alias.v // want "Gauge.v is guarded"
}

// ChainAliased reaches the field through a chain of aliases.
func (g *Gauge) ChainAliased() int {
	a := g
	b := a
	return b.v // want "Gauge.v is guarded"
}

// LockAliased locks through an alias, which counts as holding the lock.
func (g *Gauge) LockAliased() int {
	alias := g
	alias.mu.Lock()
	defer alias.mu.Unlock()
	return alias.v
}

// Other reads a different Gauge's field with no lock — outside this pass's
// scope (only the receiver and its aliases are checked; cross-instance
// discipline is lockorder/race-detector territory).
func (g *Gauge) Other(o *Gauge) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return o.v
}

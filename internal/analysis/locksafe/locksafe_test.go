package locksafe_test

import (
	"testing"

	"uvmdiscard/internal/analysis/analysistest"
	"uvmdiscard/internal/analysis/locksafe"
)

func TestLocksafe(t *testing.T) {
	analysistest.Run(t, "testdata", locksafe.Analyzer, "a")
}

// Package locksafe defines an analyzer enforcing the repo's mutex
// convention: in a struct with a field `mu sync.Mutex` (or RWMutex), every
// field declared after mu is guarded by it, and methods of that struct may
// only touch guarded fields while holding the lock.
//
// A method counts as holding the lock when its body calls <recv>.mu.Lock
// or <recv>.mu.RLock, or when its name ends in "Locked" (the convention
// for helpers whose callers hold mu). This is exactly the race class PR 1
// fixed in metrics.Collector: getters reading counters while a run was
// still writing them.
//
// The positional convention doubles as the ownership annotation for
// hot-path structs: fields declared *before* mu are unguarded by design
// and must be individually safe (sync/atomic values, or immutable after
// construction). metrics.Collector is the exemplar — its counters are
// lock-free atomics ahead of mu, so driver-loop adds never lock, while
// the composite state after mu (residency gauges, the API-time map)
// keeps the mutex. Moving a field across the mu line is therefore a
// semantic change this analyzer enforces, not a style choice.
//
// The pass is typed: the mutex field is recognized by its go/types
// identity (so a renamed or dot-imported sync still counts), and guarded
// field accesses are resolved through types.Info.Selections and a local
// alias set seeded from the receiver — `c := r; c.n++` is the aliased-
// receiver false negative the old syntax-only pass missed.
package locksafe

import (
	"go/ast"
	"go/types"
	"strings"

	"uvmdiscard/internal/analysis"
)

// Analyzer is the locksafe pass.
var Analyzer = &analysis.Analyzer{
	Name: "locksafe",
	Doc: "report accesses to mutex-guarded struct fields in methods that " +
		"neither lock the mutex nor declare (by a *Locked name) that the " +
		"caller holds it",
	Run: run,
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo
	// Pass 1: find structs with a mu sync.Mutex / sync.RWMutex field;
	// fields declared after mu are guarded.
	guarded := map[*types.TypeName]map[string]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			tn, ok := info.Defs[ts.Name].(*types.TypeName)
			if !ok {
				return true
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				return true
			}
			muIdx := -1
			for i := 0; i < st.NumFields(); i++ {
				fld := st.Field(i)
				if fld.Name() == "mu" &&
					(analysis.IsNamed(fld.Type(), "sync", "Mutex") || analysis.IsNamed(fld.Type(), "sync", "RWMutex")) {
					muIdx = i
					break
				}
			}
			if muIdx < 0 || muIdx == st.NumFields()-1 {
				return true
			}
			fields := map[string]bool{}
			for i := muIdx + 1; i < st.NumFields(); i++ {
				fields[st.Field(i).Name()] = true
			}
			guarded[tn] = fields
			return true
		})
	}
	if len(guarded) == 0 {
		return nil
	}

	// Pass 2: check each method of a guarded struct.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			recvNamed := analysis.ReceiverNamed(fn)
			if recvNamed == nil {
				continue
			}
			tn := recvNamed.Obj()
			fields := guarded[tn]
			if fields == nil {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				continue // caller holds the lock by convention
			}
			var recvObj types.Object
			if len(fd.Recv.List[0].Names) > 0 {
				recvObj = info.Defs[fd.Recv.List[0].Names[0]]
			}
			if recvObj == nil {
				continue // receiver unused: no field access possible
			}
			aliases := receiverAliases(info, fd.Body, recvObj)
			if locksMu(info, fd.Body, aliases, tn) {
				continue
			}
			// No lock acquired: any guarded-field access through the
			// receiver (or an alias of it) is a finding.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				selInfo := info.Selections[sel]
				if selInfo == nil || selInfo.Kind() != types.FieldVal {
					return true
				}
				if !fields[sel.Sel.Name] || ownerTypeName(selInfo) != tn {
					return true
				}
				id, ok := ast.Unparen(sel.X).(*ast.Ident)
				if !ok || !aliases[objOf(info, id)] {
					return true
				}
				pass.Reportf(sel.Pos(),
					"%s.%s is guarded by %s.mu, but method %s accesses it without holding the lock (no %s.mu.Lock and name does not end in Locked)",
					tn.Name(), sel.Sel.Name, tn.Name(),
					fd.Name.Name, id.Name)
				return true
			})
		}
	}
	return nil
}

// ownerTypeName resolves the named type a field selection goes through.
func ownerTypeName(sel *types.Selection) *types.TypeName {
	n := analysis.NamedOf(sel.Recv())
	if n == nil {
		return nil
	}
	return n.Obj()
}

// objOf returns the object an identifier refers to, whether it defines or
// uses it.
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// receiverAliases returns the set of objects that may refer to the
// receiver: the receiver itself plus any local variable assigned from a
// member of the set (`c := r`, `var c = r`, `c = r`), iterated to a fixed
// point so chains and later re-assignments are covered.
func receiverAliases(info *types.Info, body *ast.BlockStmt, recv types.Object) map[types.Object]bool {
	aliases := map[types.Object]bool{recv: true}
	for changed := true; changed; {
		changed = false
		add := func(lhs, rhs ast.Expr) {
			rid, ok := ast.Unparen(rhs).(*ast.Ident)
			if !ok || !aliases[objOf(info, rid)] {
				return
			}
			lid, ok := lhs.(*ast.Ident)
			if !ok {
				return
			}
			if obj := objOf(info, lid); obj != nil && !aliases[obj] {
				aliases[obj] = true
				changed = true
			}
		}
		ast.Inspect(body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if len(st.Lhs) == len(st.Rhs) {
					for i := range st.Lhs {
						add(st.Lhs[i], st.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(st.Names) == len(st.Values) {
					for i := range st.Names {
						add(st.Names[i], st.Values[i])
					}
				}
			}
			return true
		})
	}
	return aliases
}

// locksMu reports whether body contains a call to <alias>.mu.Lock or
// <alias>.mu.RLock where mu is tn's guard field.
func locksMu(info *types.Info, body *ast.BlockStmt, aliases map[types.Object]bool, tn *types.TypeName) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok || inner.Sel.Name != "mu" {
			return true
		}
		innerSel := info.Selections[inner]
		if innerSel == nil || ownerTypeName(innerSel) != tn {
			return true
		}
		id, ok := ast.Unparen(inner.X).(*ast.Ident)
		if ok && aliases[objOf(info, id)] {
			found = true
			return false
		}
		return true
	})
	return found
}

// Package locksafe defines an analyzer enforcing the repo's mutex
// convention: in a struct whose first field is `mu sync.Mutex` (or
// RWMutex), every field declared after mu is guarded by it, and methods of
// that struct may only touch guarded fields while holding the lock.
//
// A method counts as holding the lock when its body calls <recv>.mu.Lock
// or <recv>.mu.RLock, or when its name ends in "Locked" (the convention
// for helpers whose callers hold mu — e.g. metrics.Collector's
// totalBytesLocked). This is exactly the race class PR 1 fixed in
// metrics.Collector: getters reading counters while a run was still
// writing them.
package locksafe

import (
	"go/ast"
	"strings"

	"uvmdiscard/internal/analysis"
)

// Analyzer is the locksafe pass.
var Analyzer = &analysis.Analyzer{
	Name: "locksafe",
	Doc: "report accesses to mutex-guarded struct fields in methods that " +
		"neither lock the mutex nor declare (by a *Locked name) that the " +
		"caller holds it",
	Run: run,
}

// guarded describes one struct with a mu-guard.
type guarded struct {
	muName string          // the mutex field's name (always "mu" today)
	fields map[string]bool // fields declared after mu
}

func run(pass *analysis.Pass) error {
	// Pass 1: find structs with a mu sync.Mutex / sync.RWMutex field.
	structs := map[string]*guarded{} // type name -> guard info
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			if g := guardInfo(f, st); g != nil {
				structs[ts.Name.Name] = g
			}
			return true
		})
	}
	if len(structs) == 0 {
		return nil
	}

	// Pass 2: check each method of a guarded struct.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 || fd.Body == nil {
				continue
			}
			typeName := recvTypeName(fd.Recv.List[0].Type)
			g, ok := structs[typeName]
			if !ok {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				continue // caller holds the lock by convention
			}
			recv := ""
			if len(fd.Recv.List[0].Names) > 0 {
				recv = fd.Recv.List[0].Names[0].Name
			}
			if recv == "" || recv == "_" {
				continue // receiver unused: no field access possible
			}
			if locksMu(fd.Body, recv, g.muName) {
				continue
			}
			// No lock acquired: any guarded-field access is a finding.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok || id.Name != recv {
					return true
				}
				if g.fields[sel.Sel.Name] {
					pass.Reportf(sel.Pos(),
						"%s.%s is guarded by %s.%s, but method %s accesses it without holding the lock (no %s.%s.Lock and name does not end in Locked)",
						typeName, sel.Sel.Name, typeName, g.muName,
						fd.Name.Name, recv, g.muName)
				}
				return true
			})
		}
	}
	return nil
}

// guardInfo returns the guard layout of a struct whose fields include a
// sync.Mutex/RWMutex named mu; fields declared after it are guarded.
func guardInfo(f *ast.File, st *ast.StructType) *guarded {
	syncName := analysis.ImportName(f, "sync")
	if syncName == "" || st.Fields == nil {
		return nil
	}
	var g *guarded
	for _, field := range st.Fields.List {
		if g != nil {
			for _, name := range field.Names {
				g.fields[name.Name] = true
			}
			continue
		}
		sel, ok := field.Type.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || pkg.Name != syncName {
			continue
		}
		if sel.Sel.Name != "Mutex" && sel.Sel.Name != "RWMutex" {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "mu" {
				g = &guarded{muName: "mu", fields: map[string]bool{}}
			}
		}
	}
	if g == nil || len(g.fields) == 0 {
		return nil
	}
	return g
}

// recvTypeName extracts T from a receiver of type T or *T.
func recvTypeName(expr ast.Expr) string {
	switch t := expr.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.IndexExpr: // generic receiver T[P]
		return recvTypeName(t.X)
	case *ast.IndexListExpr:
		return recvTypeName(t.X)
	default:
		return ""
	}
}

// locksMu reports whether body contains a call to recv.mu.Lock or
// recv.mu.RLock.
func locksMu(body *ast.BlockStmt, recv, mu string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		inner, ok := sel.X.(*ast.SelectorExpr)
		if !ok || inner.Sel.Name != mu {
			return true
		}
		id, ok := inner.X.(*ast.Ident)
		if ok && id.Name == recv {
			found = true
			return false
		}
		return true
	})
	return found
}

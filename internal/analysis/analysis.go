// Package analysis is a small, dependency-free analogue of the
// golang.org/x/tools/go/analysis framework: an Analyzer inspects the parsed
// syntax of one package and reports Diagnostics at token positions.
//
// The repo is deliberately stdlib-only (see go.mod), so rather than pull in
// x/tools we reimplement the narrow slice of the framework the project's
// linters need: package loading (load.go), per-package analyzer runs,
// position-keyed diagnostics, and //uvmlint:ignore suppression. Analyzers
// written against this package keep the x/tools shape — a Name, a Doc
// string, and a Run(*Pass) error — so porting them to a real multichecker
// later is mechanical.
//
// The three project analyzers live in subpackages:
//
//   - locksafe:   mutex-guarded struct fields only touched under the lock
//   - simdet:     no wall-clock time or global math/rand in simulation code
//   - queuestate: gpudev queue mutators called only by their owners
//
// cmd/uvmlint is the multichecker that runs all of them over the module;
// analysistest is the `// want`-comment test harness.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //uvmlint:ignore comments. It must be a valid identifier.
	Name string
	// Doc is a one-paragraph description of what the analyzer reports.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass hands an Analyzer the parsed syntax of a single package.
type Pass struct {
	// Analyzer is the pass being run.
	Analyzer *Analyzer
	// Fset maps token positions to file/line/column.
	Fset *token.FileSet
	// Files are the package's parsed files (comments included).
	Files []*ast.File
	// PkgName is the package clause name (e.g. "core").
	PkgName string
	// PkgPath is the package's module-relative import path (e.g.
	// "internal/core"); analyzers use it for scoping rules. In
	// analysistest runs it is the path under testdata/src.
	PkgPath string

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Analyzer names the pass that produced the finding.
	Analyzer string
	// Pos is the finding's token position.
	Pos token.Pos
	// Position is Pos resolved against the file set.
	Position token.Position
	// Message describes the finding.
	Message string
}

// String renders the diagnostic in the canonical file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Position, d.Analyzer, d.Message)
}

// Run applies each analyzer to each package and returns all diagnostics,
// sorted by position, with //uvmlint:ignore suppressions applied.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				PkgName:  pkg.Name,
				PkgPath:  pkg.Path,
				diags:    &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
		diags = suppress(diags, pkg)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Position, diags[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// ignoreRe matches suppression comments: //uvmlint:ignore name[,name] reason.
// The reason is mandatory — a suppression without a why is a smell.
var ignoreRe = regexp.MustCompile(`^//uvmlint:ignore\s+([a-zA-Z0-9_,]+)\s+\S`)

// suppress drops diagnostics covered by an //uvmlint:ignore comment on the
// same line or on the line immediately above the finding.
func suppress(diags []Diagnostic, pkg *Package) []Diagnostic {
	// ignored[file][line] = set of analyzer names suppressed at that line.
	ignored := map[string]map[int]map[string]bool{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				byLine := ignored[pos.Filename]
				if byLine == nil {
					byLine = map[int]map[string]bool{}
					ignored[pos.Filename] = byLine
				}
				names := map[string]bool{}
				for _, n := range strings.Split(m[1], ",") {
					names[strings.TrimSpace(n)] = true
				}
				// A suppression covers its own line (trailing comment)
				// and the next line (comment above the statement).
				for _, line := range []int{pos.Line, pos.Line + 1} {
					if byLine[line] == nil {
						byLine[line] = map[string]bool{}
					}
					for n := range names {
						byLine[line][n] = true
					}
				}
			}
		}
	}
	if len(ignored) == 0 {
		return diags
	}
	out := diags[:0]
	for _, d := range diags {
		if names := ignored[d.Position.Filename][d.Position.Line]; names[d.Analyzer] || names["all"] {
			continue
		}
		out = append(out, d)
	}
	return out
}

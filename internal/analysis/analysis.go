// Package analysis is a small, dependency-free analogue of the
// golang.org/x/tools/go/analysis framework: an Analyzer inspects the
// type-checked syntax of one package and reports Diagnostics at token
// positions.
//
// The repo is deliberately stdlib-only (see go.mod), so rather than pull in
// x/tools we reimplement the slice of the framework the project's linters
// need: whole-module loading and type checking (loader.go — go/types plus a
// source-walking importer, stdlib types via go/importer's "source"
// compiler), per-package analyzer runs with full types.Info, cross-package
// facts exported on objects and packages, a module-wide Finish hook for
// global analyses, position-keyed diagnostics, and //uvmlint:ignore
// suppression. Analyzers written against this package keep the x/tools
// shape — a Name, a Doc string, and a Run(*Pass) error — so porting them to
// a real multichecker later is mechanical.
//
// The seven project analyzers live in subpackages:
//
//   - locksafe:     mutex-guarded struct fields only touched under the lock
//   - simdet:       no wall-clock time or global math/rand in simulation code
//   - queuestate:   gpudev queue mutators called only by their owners
//   - discardproto: no reads of a buffer between Discard/Free and rewrite
//   - lockorder:    module-wide mutex acquisition graph must stay acyclic
//   - goroleak:     daemon goroutines tied to ctx/WaitGroup/channel drains
//   - errsink:      crash-safety errors (journal, fsync, runctl) must-check
//
// cmd/uvmlint is the multichecker that runs all of them over the module;
// analysistest is the `// want`-comment test harness.
package analysis

import (
	"fmt"
	"go/ast"
	"go/scanner"
	"go/token"
	"go/types"
	"reflect"
	"regexp"
	"sort"
	"strings"
)

// Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //uvmlint:ignore comments. It must be a valid identifier.
	Name string
	// Doc is a one-paragraph description of what the analyzer reports.
	Doc string
	// Run applies the analyzer to one package. Packages are visited in
	// dependency order (imports first), so facts exported while
	// analyzing a package are visible to its importers. May be nil for
	// analyzers that only implement Finish.
	Run func(*Pass) error
	// Finish, if non-nil, runs once after every package's Run, with
	// access to all packages and this analyzer's accumulated facts. It
	// is where whole-module analyses (e.g. lock-graph cycle detection)
	// report.
	Finish func(*ModulePass) error
}

// Pass hands an Analyzer the typed syntax of a single package.
type Pass struct {
	// Analyzer is the pass being run.
	Analyzer *Analyzer
	// Fset maps token positions to file/line/column.
	Fset *token.FileSet
	// Files are the package's parsed files (comments included),
	// implementation and tests alike.
	Files []*ast.File
	// PkgName is the package clause name (e.g. "core").
	PkgName string
	// PkgPath is the package's module-relative import path (e.g.
	// "internal/core"); analyzers use it for scoping rules. In
	// analysistest runs it is the path under testdata/src.
	PkgPath string
	// Pkg is the full loaded package, including type errors.
	Pkg *Package
	// TypesInfo holds type information for every file in Files
	// (Defs/Uses/Types/Selections/...). Never nil for typed loads, but
	// entries may be missing in packages with type errors.
	TypesInfo *types.Info
	// TypesPkg is the type-checked package object (primary unit).
	TypesPkg *types.Package

	facts *factStore
	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ExportObjectFact attaches fact to obj for this analyzer. Facts are
// in-memory only (one uvmlint run checks the whole module in-process), so
// they may carry positions, object references, anything.
func (p *Pass) ExportObjectFact(obj types.Object, fact any) {
	p.facts.exportObject(obj, fact)
}

// ImportObjectFact copies into *ptr the first fact previously exported on
// obj (by any package's run of this analyzer) whose type matches ptr's
// element type, reporting whether one was found.
func (p *Pass) ImportObjectFact(obj types.Object, ptr any) bool {
	return p.facts.importObject(obj, ptr)
}

// ExportPackageFact attaches fact to the package being analyzed.
func (p *Pass) ExportPackageFact(fact any) {
	p.facts.exportPackage(p.TypesPkg, fact)
}

// ImportPackageFact copies into *ptr the first fact exported on pkg whose
// type matches ptr's element type.
func (p *Pass) ImportPackageFact(pkg *types.Package, ptr any) bool {
	return p.facts.importPackage(pkg, ptr)
}

// ModulePass is handed to an Analyzer's Finish hook: the whole module plus
// every fact the analyzer exported while visiting it.
type ModulePass struct {
	// Analyzer is the pass being finished.
	Analyzer *Analyzer
	// Fset maps token positions to file/line/column.
	Fset *token.FileSet
	// Packages are all loaded packages, in dependency order.
	Packages []*Package

	facts *factStore
	diags *[]Diagnostic
}

// Reportf records a module-level diagnostic at pos.
func (m *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	*m.diags = append(*m.diags, Diagnostic{
		Analyzer: m.Analyzer.Name,
		Pos:      pos,
		Position: m.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ObjectFact is one exported fact and the object carrying it.
type ObjectFact struct {
	Obj  types.Object
	Fact any
}

// AllObjectFacts returns every object fact this analyzer exported.
func (m *ModulePass) AllObjectFacts() []ObjectFact {
	return m.facts.allObjects()
}

// ImportPackageFact copies into *ptr the first fact exported on pkg whose
// type matches ptr's element type.
func (m *ModulePass) ImportPackageFact(pkg *types.Package, ptr any) bool {
	return m.facts.importPackage(pkg, ptr)
}

// factStore holds one analyzer's exported facts.
type factStore struct {
	obj     map[types.Object][]any
	objList []ObjectFact // export order, for deterministic iteration
	pkg     map[*types.Package][]any
}

func newFactStore() *factStore {
	return &factStore{obj: map[types.Object][]any{}, pkg: map[*types.Package][]any{}}
}

func (s *factStore) exportObject(obj types.Object, fact any) {
	s.obj[obj] = append(s.obj[obj], fact)
	s.objList = append(s.objList, ObjectFact{obj, fact})
}

func (s *factStore) importObject(obj types.Object, ptr any) bool {
	return assignFact(s.obj[obj], ptr)
}

func (s *factStore) exportPackage(pkg *types.Package, fact any) {
	s.pkg[pkg] = append(s.pkg[pkg], fact)
}

func (s *factStore) importPackage(pkg *types.Package, ptr any) bool {
	return assignFact(s.pkg[pkg], ptr)
}

func (s *factStore) allObjects() []ObjectFact { return s.objList }

// assignFact copies the first fact assignable to *ptr into it. Facts are
// conventionally exported as pointers (`ExportPackageFact(&FnLocks{...})`)
// and imported into values (`var f FnLocks; ImportObjectFact(obj, &f)`),
// so a pointer fact matches a value target through one dereference.
func assignFact(facts []any, ptr any) bool {
	v := reflect.ValueOf(ptr)
	if v.Kind() != reflect.Pointer {
		panic("analysis: fact pointer required")
	}
	for _, f := range facts {
		fv := reflect.ValueOf(f)
		if fv.Kind() == reflect.Pointer && fv.Elem().Type().AssignableTo(v.Elem().Type()) {
			fv = fv.Elem()
		}
		if fv.Type().AssignableTo(v.Elem().Type()) {
			v.Elem().Set(fv)
			return true
		}
	}
	return false
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Analyzer names the pass that produced the finding.
	Analyzer string
	// Pos is the finding's token position.
	Pos token.Pos
	// Position is Pos resolved against the file set.
	Position token.Position
	// Message describes the finding.
	Message string
}

// String renders the diagnostic in the canonical file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Position, d.Analyzer, d.Message)
}

// SuppressName is the pseudo-analyzer name under which the framework
// itself reports problems with //uvmlint:ignore comments (malformed
// syntax, suppressions that no longer suppress anything). These findings
// cannot themselves be suppressed.
const SuppressName = "suppress"

// TypecheckName is the pseudo-analyzer name for parse and type-check
// failures surfaced by the loader.
const TypecheckName = "typecheck"

// Run applies each analyzer to each package (in the given order, which the
// loader guarantees is dependency order), runs Finish hooks, and returns
// all surviving diagnostics sorted by position, with //uvmlint:ignore
// suppressions applied and suppression hygiene enforced.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	kept, _, err := RunDetailed(pkgs, analyzers)
	return kept, err
}

// RunDetailed is Run, but additionally returns the diagnostics that were
// matched and dropped by suppression comments — the analysistest harness
// uses them to reject `// want` expectations satisfied only by a
// suppressed finding.
func RunDetailed(pkgs []*Package, analyzers []*Analyzer) (kept, suppressed []Diagnostic, err error) {
	var diags []Diagnostic
	facts := map[*Analyzer]*factStore{}
	for _, a := range analyzers {
		facts[a] = newFactStore()
	}
	for _, pkg := range pkgs {
		for _, e := range pkg.TypeErrors {
			diags = append(diags, typeErrorDiag(pkg, e))
		}
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				PkgName:   pkg.Name,
				PkgPath:   pkg.Path,
				Pkg:       pkg,
				TypesInfo: pkg.Info,
				TypesPkg:  pkg.TypesPkg,
				facts:     facts[a],
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	for _, a := range analyzers {
		if a.Finish == nil {
			continue
		}
		mp := &ModulePass{
			Analyzer: a,
			Fset:     fsetOf(pkgs),
			Packages: pkgs,
			facts:    facts[a],
			diags:    &diags,
		}
		if err := a.Finish(mp); err != nil {
			return nil, nil, fmt.Errorf("analysis: %s finish: %w", a.Name, err)
		}
	}
	kept, suppressed = applySuppressions(diags, pkgs, analyzers)
	sortDiags(kept)
	sortDiags(suppressed)
	return kept, suppressed, nil
}

func fsetOf(pkgs []*Package) *token.FileSet {
	if len(pkgs) > 0 {
		return pkgs[0].Fset
	}
	return token.NewFileSet()
}

// typeErrorDiag renders a loader-collected parse or type-check failure.
func typeErrorDiag(pkg *Package, err error) Diagnostic {
	d := Diagnostic{Analyzer: TypecheckName, Message: err.Error()}
	switch e := err.(type) {
	case types.Error:
		d.Position = e.Fset.Position(e.Pos)
		d.Pos = e.Pos
		d.Message = e.Msg
	case scanner.ErrorList:
		if len(e) > 0 {
			d.Position = e[0].Pos
			d.Message = e[0].Msg
		}
	default:
		d.Position = token.Position{Filename: pkg.Dir}
	}
	return d
}

func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Position, diags[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if diags[i].Analyzer != diags[j].Analyzer {
			return diags[i].Analyzer < diags[j].Analyzer
		}
		return diags[i].Message < diags[j].Message
	})
}

// ignorePrefixRe recognizes any comment that is trying to be a suppression;
// ignoreRe matches the full required form:
//
//	//uvmlint:ignore <name>[,<name>...] -- <justification>
//
// The " -- <justification>" clause is mandatory: a suppression must say why
// the finding is acceptable, and the framework reports comments that omit
// it instead of silently not suppressing.
var (
	ignorePrefixRe = regexp.MustCompile(`^//uvmlint:ignore(\s|$)`)
	ignoreRe       = regexp.MustCompile(`^//uvmlint:ignore\s+([a-zA-Z0-9_,]+)\s+--\s+\S`)
)

// suppression is one parsed //uvmlint:ignore comment.
type suppression struct {
	pos       token.Position
	names     map[string]bool
	malformed bool
	used      bool
}

// applySuppressions drops diagnostics covered by a well-formed
// //uvmlint:ignore comment on the same line or the line immediately above,
// and appends framework findings for malformed or unused suppressions.
func applySuppressions(diags []Diagnostic, pkgs []*Package, analyzers []*Analyzer) (kept, suppressed []Diagnostic) {
	inRun := map[string]bool{}
	for _, a := range analyzers {
		inRun[a.Name] = true
	}

	var sups []*suppression
	// byLine[file][line] = suppressions covering that line.
	byLine := map[string]map[int][]*suppression{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !ignorePrefixRe.MatchString(c.Text) {
						continue
					}
					s := &suppression{pos: pkg.Fset.Position(c.Pos())}
					if m := ignoreRe.FindStringSubmatch(c.Text); m != nil {
						s.names = map[string]bool{}
						for _, n := range strings.Split(m[1], ",") {
							s.names[strings.TrimSpace(n)] = true
						}
					} else {
						s.malformed = true
					}
					sups = append(sups, s)
					if s.malformed {
						continue
					}
					lines := byLine[s.pos.Filename]
					if lines == nil {
						lines = map[int][]*suppression{}
						byLine[s.pos.Filename] = lines
					}
					// A suppression covers its own line (trailing
					// comment) and the next line (comment above the
					// statement).
					lines[s.pos.Line] = append(lines[s.pos.Line], s)
					lines[s.pos.Line+1] = append(lines[s.pos.Line+1], s)
				}
			}
		}
	}

	kept = make([]Diagnostic, 0, len(diags))
	for _, d := range diags {
		if d.Analyzer == SuppressName {
			kept = append(kept, d)
			continue
		}
		matched := false
		for _, s := range byLine[d.Position.Filename][d.Position.Line] {
			if s.names[d.Analyzer] || s.names["all"] {
				s.used = true
				matched = true
			}
		}
		if matched {
			suppressed = append(suppressed, d)
		} else {
			kept = append(kept, d)
		}
	}

	for _, s := range sups {
		if s.malformed {
			kept = append(kept, Diagnostic{
				Analyzer: SuppressName,
				Position: s.pos,
				Message: "malformed //uvmlint:ignore: want " +
					`"//uvmlint:ignore <analyzer>[,<analyzer>] -- <justification>"`,
			})
			continue
		}
		if s.used {
			continue
		}
		// Only call a suppression unused when this run actually executed
		// every analyzer it names ("all" counts as the full run): a
		// partial run (analysistest on one pass) cannot know.
		known := true
		for n := range s.names {
			if n != "all" && !inRun[n] {
				known = false
			}
		}
		if known {
			kept = append(kept, Diagnostic{
				Analyzer: SuppressName,
				Position: s.pos,
				Message: fmt.Sprintf("unused //uvmlint:ignore for %s: nothing is suppressed here; delete it",
					namesList(s.names)),
			})
		}
	}
	return kept, suppressed
}

func namesList(names map[string]bool) string {
	var out []string
	for n := range names {
		out = append(out, n)
	}
	sort.Strings(out)
	return strings.Join(out, ",")
}

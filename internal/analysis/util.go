package analysis

import (
	"go/ast"
	"go/types"
)

// Callee resolves the function or method called by call, or nil when the
// callee is not a static function (a function value, a type conversion, a
// builtin). Works through renamed imports, dot imports, and method values
// because it consults type information, not names.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// ReceiverNamed returns the named type of fn's receiver, looking through a
// pointer, or nil for plain functions.
func ReceiverNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return NamedOf(sig.Recv().Type())
}

// NamedOf returns t as a *types.Named, looking through one pointer and
// through aliases, or nil.
func NamedOf(t types.Type) *types.Named {
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := types.Unalias(t).(*types.Named)
	return n
}

// IsNamed reports whether t (after pointer deref) is the named type
// pkgPath.name.
func IsNamed(t types.Type, pkgPath, name string) bool {
	n := NamedOf(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && ObjPkgPath(obj) == pkgPath
}

// ObjPkgPath returns the import path of the package declaring obj, or ""
// for universe-scope objects.
func ObjPkgPath(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// IsPkgFunc reports whether fn is the package-level function pkgPath.name
// (no receiver).
func IsPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Name() != name || ObjPkgPath(fn) != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// IsMethod reports whether fn is the method recvPkgPath.recvName.name
// (pointer or value receiver).
func IsMethod(fn *types.Func, recvPkgPath, recvName, name string) bool {
	if fn == nil || fn.Name() != name {
		return false
	}
	recv := ReceiverNamed(fn)
	if recv == nil {
		return false
	}
	obj := recv.Obj()
	return obj.Name() == recvName && ObjPkgPath(obj) == recvPkgPath
}

package cuda

import (
	"testing"

	"uvmdiscard/internal/core"
	"uvmdiscard/internal/gpudev"
	"uvmdiscard/internal/metrics"
	"uvmdiscard/internal/sim"
	"uvmdiscard/internal/units"
)

func testCtx(t *testing.T, blocks int) *Context {
	t.Helper()
	c, err := NewContext(core.Config{
		GPU: gpudev.Generic(units.Size(blocks) * units.BlockSize),
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestVectorAddLifecycle(t *testing.T) {
	// Listing 2: the UVM VectorAdd example, with a functional payload.
	ctx := testCtx(t, 16)
	n := int(units.BlockSize) // one block of float-free byte "vectors"
	a, err := ctx.MallocManaged("A", units.Size(n))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := ctx.MallocManaged("B", units.Size(n))
	out, _ := ctx.MallocManaged("C", units.Size(n))

	// Generate input data on the host.
	if err := a.HostWrite(0, a.Size()); err != nil {
		t.Fatal(err)
	}
	if err := b.HostWrite(0, b.Size()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		a.Data()[i] = byte(i)
		b.Data()[i] = byte(2 * i)
	}

	s := ctx.Stream("s")
	if err := s.PrefetchAll(a, ToGPU); err != nil {
		t.Fatal(err)
	}
	if err := s.PrefetchAll(b, ToGPU); err != nil {
		t.Fatal(err)
	}
	if err := s.PrefetchAll(out, ToGPU); err != nil {
		t.Fatal(err)
	}
	err = s.Launch(Kernel{
		Name:    "vectorAdd",
		Compute: ctx.ComputeForBytes(float64(3 * n)),
		Accesses: []Access{
			{Buf: a, Mode: core.Read},
			{Buf: b, Mode: core.Read},
			{Buf: out, Mode: core.Write},
		},
		Fn: func() {
			for i := 0; i < n; i++ {
				out.Data()[i] = a.Data()[i] + b.Data()[i]
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx.DeviceSynchronize()
	if err := out.HostRead(0, out.Size()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i += 997 {
		if out.Data()[i] != byte(i)+byte(2*i) {
			t.Fatalf("C[%d] = %d, want %d", i, out.Data()[i], byte(i)+byte(2*i))
		}
	}
	// A and B migrated H2D; C was prefaulted on the GPU (zero-fill, no
	// transfer) and came back D2H.
	m := ctx.Metrics()
	if got := m.TotalBytes(metrics.H2D); got != uint64(2*n) {
		t.Errorf("H2D = %d, want %d", got, 2*n)
	}
	if got := m.TotalBytes(metrics.D2H); got != uint64(n) {
		t.Errorf("D2H = %d, want %d", got, n)
	}
	if ctx.Elapsed() <= 0 {
		t.Error("no time elapsed")
	}
}

func TestStreamOrdering(t *testing.T) {
	ctx := testCtx(t, 8)
	buf, _ := ctx.MallocManaged("x", units.BlockSize)
	s := ctx.Stream("s")
	if err := s.PrefetchAll(buf, ToGPU); err != nil {
		t.Fatal(err)
	}
	t1 := s.Tail()
	if err := s.Launch(Kernel{Name: "k", Compute: sim.Millisecond,
		Accesses: []Access{{Buf: buf, Mode: core.Write}}}); err != nil {
		t.Fatal(err)
	}
	if s.Tail() < t1+sim.Millisecond {
		t.Errorf("kernel did not serialize after prefetch: %v < %v", s.Tail(), t1+sim.Millisecond)
	}
}

func TestCrossStreamOverlap(t *testing.T) {
	// Two independent kernels on two streams share the compute engine and
	// serialize there; but a prefetch on stream B overlaps with a kernel
	// on stream A.
	ctx := testCtx(t, 16)
	a, _ := ctx.MallocManaged("a", units.BlockSize)
	b, _ := ctx.MallocManaged("b", 4*units.BlockSize)
	if err := b.HostWrite(0, b.Size()); err != nil {
		t.Fatal(err)
	}

	s1, s2 := ctx.Stream("compute"), ctx.Stream("copy")
	if err := s1.Launch(Kernel{Name: "k", Compute: 10 * sim.Millisecond,
		Accesses: []Access{{Buf: a, Mode: core.Write}}}); err != nil {
		t.Fatal(err)
	}
	if err := s2.PrefetchAll(b, ToGPU); err != nil {
		t.Fatal(err)
	}
	// The prefetch ran on the DMA engine while the kernel computed: its
	// completion is far earlier than the kernel's.
	if s2.Tail() >= s1.Tail() {
		t.Errorf("no overlap: prefetch tail %v >= kernel tail %v", s2.Tail(), s1.Tail())
	}
	ctx.DeviceSynchronize()
	if ctx.Clock().Now() < s1.Tail() {
		t.Error("DeviceSynchronize did not wait for the slowest stream")
	}
}

func TestComputeEngineSerializesKernels(t *testing.T) {
	ctx := testCtx(t, 8)
	a, _ := ctx.MallocManaged("a", units.BlockSize)
	b, _ := ctx.MallocManaged("b", units.BlockSize)
	s1, s2 := ctx.Stream("1"), ctx.Stream("2")
	if err := s1.Launch(Kernel{Name: "k1", Compute: 5 * sim.Millisecond,
		Accesses: []Access{{Buf: a, Mode: core.Write}}}); err != nil {
		t.Fatal(err)
	}
	if err := s2.Launch(Kernel{Name: "k2", Compute: 5 * sim.Millisecond,
		Accesses: []Access{{Buf: b, Mode: core.Write}}}); err != nil {
		t.Fatal(err)
	}
	if s2.Tail() < 10*sim.Millisecond {
		t.Errorf("kernels overlapped on one compute engine: tail %v", s2.Tail())
	}
}

func TestEvents(t *testing.T) {
	ctx := testCtx(t, 8)
	a, _ := ctx.MallocManaged("a", units.BlockSize)
	s1, s2 := ctx.Stream("1"), ctx.Stream("2")
	if err := s1.Launch(Kernel{Name: "k", Compute: 3 * sim.Millisecond,
		Accesses: []Access{{Buf: a, Mode: core.Write}}}); err != nil {
		t.Fatal(err)
	}
	ev := ctx.NewEvent()
	if ev.Recorded() {
		t.Error("fresh event claims recorded")
	}
	s1.RecordEvent(ev)
	if !ev.Recorded() || ev.Time() != s1.Tail() {
		t.Error("event record wrong")
	}
	s2.WaitEvent(ev)
	if s2.Tail() != s1.Tail() {
		t.Error("WaitEvent did not order streams")
	}
	// Waiting on an unrecorded event is a no-op.
	s2.WaitEvent(ctx.NewEvent())
	if s2.Tail() != s1.Tail() {
		t.Error("unrecorded event moved the stream")
	}
}

func TestDiscardAPIsChargeHostTime(t *testing.T) {
	ctx := testCtx(t, 8)
	buf, _ := ctx.MallocManaged("x", 8*units.MiB)
	s := ctx.Stream("s")
	if err := s.Launch(Kernel{Name: "k", Accesses: []Access{{Buf: buf, Mode: core.Write}}}); err != nil {
		t.Fatal(err)
	}
	before := ctx.Clock().Now()
	if err := s.DiscardAll(buf); err != nil {
		t.Fatal(err)
	}
	eager := ctx.Clock().Now() - before
	wantEager := ctx.Driver().Costs().Discard.Eval(8 * units.MiB)
	if eager != wantEager {
		t.Errorf("eager discard host cost = %v, want %v", eager, wantEager)
	}
	// Re-populate then lazy-discard: cheaper call.
	if err := s.PrefetchAll(buf, ToGPU); err != nil {
		t.Fatal(err)
	}
	before = ctx.Clock().Now()
	if err := s.DiscardLazyAll(buf); err != nil {
		t.Fatal(err)
	}
	lazy := ctx.Clock().Now() - before
	if lazy >= eager {
		t.Errorf("lazy call (%v) not cheaper than eager (%v)", lazy, eager)
	}
	if ctx.Metrics().APITime("UvmDiscard") != wantEager {
		t.Error("API time not attributed")
	}
}

func TestKernelThrashingPasses(t *testing.T) {
	ctx := testCtx(t, 4)
	buf, _ := ctx.MallocManaged("big", 8*units.BlockSize)
	if err := buf.HostWrite(0, buf.Size()); err != nil {
		t.Fatal(err)
	}
	s := ctx.Stream("s")
	if err := s.Launch(Kernel{
		Name:     "thrash",
		Accesses: []Access{{Buf: buf, Mode: core.ReadWrite, Passes: 3}},
	}); err != nil {
		t.Fatal(err)
	}
	// Footprint 2x capacity with 3 sequential passes: every pass misses
	// everything: 24 block transfers H2D.
	h2d := ctx.Metrics().TotalBytes(metrics.H2D)
	if h2d != uint64(24*units.BlockSize) {
		t.Errorf("H2D = %d blocks, want 24", h2d/uint64(units.BlockSize))
	}
}

func TestScatterAccessCoversAllBlocks(t *testing.T) {
	ctx := testCtx(t, 16)
	buf, _ := ctx.MallocManaged("x", 8*units.BlockSize)
	s := ctx.Stream("s")
	if err := s.Launch(Kernel{
		Name:     "scatter",
		Accesses: []Access{{Buf: buf, Mode: core.Write, Scatter: true}},
	}); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf.Alloc().Blocks() {
		if b.Residency.String() != "gpu" {
			t.Fatalf("block %d not resident after scatter access", b.Index)
		}
	}
}

func TestNoUVMDeviceBuffers(t *testing.T) {
	ctx := testCtx(t, 8)
	db, err := ctx.Malloc(4 * units.BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	if db.Size() != 4*units.BlockSize {
		t.Error("size wrong")
	}
	s := ctx.Stream("s")
	s.MemcpyHostToDevice(4 * units.BlockSize)
	s.MemcpyDeviceToHost(2 * units.BlockSize)
	if ctx.Metrics().Bytes(metrics.H2D, metrics.CauseMemcpy) != uint64(4*units.BlockSize) {
		t.Error("H2D memcpy not recorded")
	}
	// Allocation beyond capacity fails.
	if _, err := ctx.Malloc(8 * units.BlockSize); err == nil {
		t.Error("oversized cudaMalloc accepted")
	}
	db.Free()
	full, err := ctx.Malloc(8 * units.BlockSize)
	if err != nil {
		t.Errorf("full-capacity alloc after free failed: %v", err)
	} else {
		if _, err := ctx.Malloc(units.BlockSize); err == nil {
			t.Error("alloc beyond exhausted capacity accepted")
		}
		full.Free()
	}
}

func TestKernelLengthDefaultsToWholeBuffer(t *testing.T) {
	ctx := testCtx(t, 8)
	buf, _ := ctx.MallocManaged("x", 3*units.BlockSize)
	s := ctx.Stream("s")
	if err := s.Launch(Kernel{Name: "k",
		Accesses: []Access{{Buf: buf, Offset: units.BlockSize, Mode: core.Write}}}); err != nil {
		t.Fatal(err)
	}
	if buf.Alloc().Block(0).Residency.String() == "gpu" {
		t.Error("offset ignored")
	}
	if buf.Alloc().Block(2).Residency.String() != "gpu" {
		t.Error("default length did not reach buffer end")
	}
}

func TestKernelBadRangeError(t *testing.T) {
	ctx := testCtx(t, 8)
	buf, _ := ctx.MallocManaged("x", units.BlockSize)
	s := ctx.Stream("s")
	err := s.Launch(Kernel{Name: "bad",
		Accesses: []Access{{Buf: buf, Offset: 0, Length: 2 * units.BlockSize, Mode: core.Read}}})
	if err == nil {
		t.Error("out-of-range access accepted")
	}
}

func TestBufferFreeChargesCost(t *testing.T) {
	ctx := testCtx(t, 8)
	buf, _ := ctx.MallocManaged("x", 2*units.MiB)
	before := ctx.Clock().Now()
	if err := buf.Free(); err != nil {
		t.Fatal(err)
	}
	if ctx.Clock().Now() == before {
		t.Error("free charged no host time")
	}
	if buf.Free() == nil {
		t.Error("double free accepted")
	}
}

func TestComputeHelpers(t *testing.T) {
	ctx := testCtx(t, 8)
	if ctx.ComputeForFlops(10e12) != sim.Second {
		t.Errorf("10 TFLOP on 10 TFLOPS GPU should take 1s, got %v",
			ctx.ComputeForFlops(10e12))
	}
	if ctx.ComputeForBytes(500e9) != sim.Second {
		t.Errorf("500 GB at 500 GB/s should take 1s, got %v",
			ctx.ComputeForBytes(500e9))
	}
}

func TestStreamMemAdvise(t *testing.T) {
	ctx := testCtx(t, 8)
	buf, _ := ctx.MallocManaged("w", 4*units.MiB)
	if err := buf.HostWrite(0, buf.Size()); err != nil {
		t.Fatal(err)
	}
	s := ctx.Stream("s")
	if err := s.MemAdviseAll(buf, core.AdviseSetReadMostly); err != nil {
		t.Fatal(err)
	}
	if !buf.Alloc().Block(0).ReadMostly {
		t.Error("advice not applied")
	}
	if err := s.MemAdvise(buf, 0, 2*units.MiB, core.AdviseSetPreferredGPU); err != nil {
		t.Fatal(err)
	}
	if buf.Alloc().Block(0).Preferred.String() != "gpu" {
		t.Error("preferred location not applied")
	}
	// Range validation propagates.
	if err := s.MemAdvise(buf, 0, 100*units.MiB, core.AdviseSetReadMostly); err == nil {
		t.Error("out-of-range advice accepted")
	}
	if ctx.Metrics().APITime("cudaMemAdvise") == 0 {
		t.Error("advise API time not attributed")
	}
}

// The address-range discard entry point (the real UvmDiscard signature).
func TestDiscardByAddress(t *testing.T) {
	ctx := testCtx(t, 8)
	buf, _ := ctx.MallocManaged("x", 4*units.BlockSize)
	s := ctx.Stream("s")
	if err := s.Launch(Kernel{Name: "k",
		Accesses: []Access{{Buf: buf, Mode: core.Write}}}); err != nil {
		t.Fatal(err)
	}
	va := buf.Alloc().Base() + uint64(units.BlockSize)
	if err := s.DiscardAddrAsync(va, 2*units.BlockSize); err != nil {
		t.Fatal(err)
	}
	a := buf.Alloc()
	if a.Block(0).Discarded || !a.Block(1).Discarded || !a.Block(2).Discarded || a.Block(3).Discarded {
		t.Error("address-range discard covered the wrong blocks")
	}
	// Lazy flavor on the remaining block.
	if err := s.DiscardLazyAddrAsync(a.Base(), units.BlockSize); err != nil {
		t.Fatal(err)
	}
	if !a.Block(0).LazyDiscard {
		t.Error("lazy address discard missed")
	}
	// Errors: unmanaged address, range past the allocation end.
	if err := s.DiscardAddrAsync(0xdead0000_0000, units.BlockSize); err == nil {
		t.Error("wild address accepted")
	}
	if err := s.DiscardAddrAsync(a.Base(), 100*units.BlockSize); err == nil {
		t.Error("overlong range accepted")
	}
}

package cuda

import (
	"testing"

	"uvmdiscard/internal/core"
	"uvmdiscard/internal/gpudev"
	"uvmdiscard/internal/metrics"
	"uvmdiscard/internal/sim"
	"uvmdiscard/internal/units"
	"uvmdiscard/internal/vaspace"
)

func dualCtx(t *testing.T, blocksEach int) *Context {
	t.Helper()
	mem := units.Size(blocksEach) * units.BlockSize
	c, err := NewContext(core.Config{
		GPU:      gpudev.Generic(mem),
		PeerGPUs: []gpudev.Profile{gpudev.Generic(mem)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestMultiGPUContext(t *testing.T) {
	ctx := dualCtx(t, 8)
	if ctx.NumGPUs() != 2 {
		t.Fatalf("GPUs = %d", ctx.NumGPUs())
	}
	if ctx.Driver().NumGPUs() != 2 {
		t.Fatal("driver GPU count wrong")
	}
	if ctx.ComputeAt(0) == ctx.ComputeAt(1) {
		t.Error("compute engines shared across GPUs")
	}
	if ctx.Driver().PeerLink().PeakBandwidth() < 100e9 {
		t.Error("default peer fabric should be NVSwitch-class")
	}
}

func TestKernelTargetsGPU(t *testing.T) {
	ctx := dualCtx(t, 8)
	buf, _ := ctx.MallocManaged("x", units.BlockSize)
	s := ctx.Stream("s")
	if err := s.Launch(Kernel{Name: "k", GPU: 1,
		Accesses: []Access{{Buf: buf, Mode: core.Write}}}); err != nil {
		t.Fatal(err)
	}
	b := buf.Alloc().Block(0)
	if b.Residency != vaspace.GPUResident || b.GPUIndex != 1 {
		t.Fatalf("block on GPU %d, want 1 (%v)", b.GPUIndex, b.Residency)
	}
	if ctx.Driver().DeviceAt(1).QueueLen(gpudev.QueueUsed) != 1 {
		t.Error("chunk not on GPU 1's used queue")
	}
	if ctx.Driver().DeviceAt(0).QueueLen(gpudev.QueueUsed) != 0 {
		t.Error("chunk leaked onto GPU 0")
	}
	if err := s.Launch(Kernel{Name: "bad", GPU: 7}); err == nil {
		t.Error("out-of-range GPU accepted")
	}
}

// Data produced on one GPU and consumed on another migrates over the peer
// fabric, not over PCIe.
func TestPeerMigration(t *testing.T) {
	ctx := dualCtx(t, 8)
	buf, _ := ctx.MallocManaged("x", 2*units.BlockSize)
	s := ctx.Stream("s")
	if err := s.Launch(Kernel{Name: "produce", GPU: 0,
		Accesses: []Access{{Buf: buf, Mode: core.Write}}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Launch(Kernel{Name: "consume", GPU: 1,
		Accesses: []Access{{Buf: buf, Mode: core.Read}}}); err != nil {
		t.Fatal(err)
	}
	m := ctx.Metrics()
	peerBytes, peerOps := m.Peer()
	if peerBytes != uint64(2*units.BlockSize) || peerOps != 2 {
		t.Errorf("peer = %d bytes / %d ops", peerBytes, peerOps)
	}
	if m.Traffic() != 0 {
		t.Errorf("peer migration crossed host DRAM: %d PCIe bytes", m.Traffic())
	}
	b := buf.Alloc().Block(0)
	if b.GPUIndex != 1 {
		t.Error("block did not move to GPU 1")
	}
	// Source chunks were freed.
	if ctx.Driver().DeviceAt(0).QueueLen(gpudev.QueueFree) != 8 {
		t.Error("source chunks not freed")
	}
	if err := ctx.Driver().DeviceAt(0).CheckInvariants(); err != nil {
		t.Error(err)
	}
	if err := ctx.Driver().DeviceAt(1).CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// Discarding before handing a buffer to a peer skips the peer transfer —
// the discard directive works across GPUs too.
func TestDiscardSkipsPeerTransfer(t *testing.T) {
	ctx := dualCtx(t, 8)
	buf, _ := ctx.MallocManaged("x", 2*units.BlockSize)
	s := ctx.Stream("s")
	if err := s.Launch(Kernel{Name: "produce", GPU: 0,
		Accesses: []Access{{Buf: buf, Mode: core.Write}}}); err != nil {
		t.Fatal(err)
	}
	if err := s.DiscardAll(buf); err != nil {
		t.Fatal(err)
	}
	if err := s.Launch(Kernel{Name: "overwrite", GPU: 1,
		Accesses: []Access{{Buf: buf, Mode: core.Write}}}); err != nil {
		t.Fatal(err)
	}
	m := ctx.Metrics()
	if peerBytes, _ := m.Peer(); peerBytes != 0 {
		t.Errorf("peer moved %d bytes despite discard", peerBytes)
	}
	if m.PeerSaved() != uint64(2*units.BlockSize) {
		t.Errorf("peer saved = %d", m.PeerSaved())
	}
	if buf.Alloc().Block(0).GPUIndex != 1 {
		t.Error("block not repopulated on GPU 1")
	}
	// GPU 0's chunks were reclaimed.
	if ctx.Driver().DeviceAt(0).QueueLen(gpudev.QueueFree) != 8 {
		t.Error("discarded peer chunks not reclaimed")
	}
}

// Kernels on different GPUs overlap in time; same-GPU kernels serialize.
func TestCrossGPUComputeOverlap(t *testing.T) {
	ctx := dualCtx(t, 8)
	a, _ := ctx.MallocManaged("a", units.BlockSize)
	b, _ := ctx.MallocManaged("b", units.BlockSize)
	s1, s2 := ctx.Stream("1"), ctx.Stream("2")
	if err := s1.Launch(Kernel{Name: "k0", GPU: 0, Compute: 10 * sim.Millisecond,
		Accesses: []Access{{Buf: a, Mode: core.Write}}}); err != nil {
		t.Fatal(err)
	}
	if err := s2.Launch(Kernel{Name: "k1", GPU: 1, Compute: 10 * sim.Millisecond,
		Accesses: []Access{{Buf: b, Mode: core.Write}}}); err != nil {
		t.Fatal(err)
	}
	if s2.Tail() >= 20*sim.Millisecond {
		t.Errorf("cross-GPU kernels serialized: tail %v", s2.Tail())
	}
}

func TestPrefetchAllTo(t *testing.T) {
	ctx := dualCtx(t, 8)
	buf, _ := ctx.MallocManaged("x", units.BlockSize)
	if err := buf.HostWrite(0, buf.Size()); err != nil {
		t.Fatal(err)
	}
	s := ctx.Stream("s")
	if err := s.PrefetchAllTo(buf, 1); err != nil {
		t.Fatal(err)
	}
	b := buf.Alloc().Block(0)
	if b.Residency != vaspace.GPUResident || b.GPUIndex != 1 {
		t.Errorf("prefetch landed on GPU %d", b.GPUIndex)
	}
	if ctx.Metrics().Bytes(metrics.H2D, metrics.CausePrefetch) != uint64(units.BlockSize) {
		t.Error("prefetch traffic missing")
	}
}

// Each GPU evicts independently: pressure on GPU 1 does not disturb GPU 0.
func TestPerGPUEviction(t *testing.T) {
	ctx := dualCtx(t, 2)
	a, _ := ctx.MallocManaged("a", 2*units.BlockSize)
	big, _ := ctx.MallocManaged("big", 3*units.BlockSize)
	s := ctx.Stream("s")
	if err := s.Launch(Kernel{Name: "fill0", GPU: 0,
		Accesses: []Access{{Buf: a, Mode: core.Write}}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Launch(Kernel{Name: "fill1", GPU: 1,
		Accesses: []Access{{Buf: big, Mode: core.Write}}}); err != nil {
		t.Fatal(err)
	}
	// GPU 1 (2 chunks) had to evict for big's 3 blocks; GPU 0's data is
	// untouched.
	for _, b := range a.Alloc().Blocks() {
		if b.Residency != vaspace.GPUResident || b.GPUIndex != 0 {
			t.Errorf("GPU 0 block disturbed: %+v", b)
		}
	}
	if ctx.Metrics().Evictions(metrics.EvictLRU) == 0 {
		t.Error("GPU 1 never evicted")
	}
}

package cuda

import (
	"fmt"

	"uvmdiscard/internal/core"
	"uvmdiscard/internal/sim"
	"uvmdiscard/internal/units"
	"uvmdiscard/internal/vaspace"
)

// Access declares one memory range a kernel touches and how — the
// block-granular access trace the simulated driver sees instead of real
// loads and stores.
type Access struct {
	// Buf is the managed buffer accessed.
	Buf *Buffer
	// Offset and Length select the range; a zero Length means the whole
	// buffer.
	Offset, Length units.Size
	// Mode says whether the kernel consumes the range's prior contents
	// (Read/ReadWrite) or overwrites without reading (Write).
	Mode core.AccessMode
	// Passes is how many times the kernel sweeps the range; >1 models
	// kernels that revisit data and thrash when the range exceeds GPU
	// memory (§7.3). Zero means one pass.
	Passes int
	// Scatter randomizes the block visit order within each pass,
	// modeling non-streaming access ("the GPU does not follow a
	// deterministic pattern to access parallel columns of data").
	Scatter bool
}

// Kernel is one device kernel launch: a pure compute duration plus the
// access trace that generates faults/migrations, and an optional host-side
// functional payload for examples that compute real results.
type Kernel struct {
	// Name appears in errors and traces.
	Name string
	// GPU selects the device the kernel runs on (multi-GPU systems);
	// zero is the primary GPU.
	GPU int
	// Compute is the kernel's pure execution time with all data local.
	Compute sim.Time
	// Accesses is the ordered access trace.
	Accesses []Access
	// Fn, if set, runs after the kernel's memory accesses are simulated;
	// it should read/write the touched buffers' Data().
	Fn func()
}

// Launch enqueues the kernel on the stream. Fault servicing serializes with
// kernel execution — GPU page faults "significantly hinder the
// thread-parallelism of GPU kernels" (§2.1) — so the kernel occupies the
// compute engine for its compute time after all its access stalls resolve.
func (s *Stream) Launch(k Kernel) error {
	costs := s.ctx.drv.Costs()
	start := s.ready(costs.KernelLaunch)
	s.ctx.drv.Metrics().AddAPITime("kernelLaunch", costs.KernelLaunch)
	if k.GPU < 0 || k.GPU >= s.ctx.NumGPUs() {
		return fmt.Errorf("cuda: kernel %s targets GPU %d of %d", k.Name, k.GPU, s.ctx.NumGPUs())
	}

	cur := start
	for _, acc := range k.Accesses {
		length := acc.Length
		if length == 0 {
			length = acc.Buf.Size() - acc.Offset
		}
		blocks, err := acc.Buf.alloc.AppendBlockRange(s.ctx.blockScratch[:0], acc.Offset, length, false)
		s.ctx.blockScratch = blocks[:0]
		if err != nil {
			return fmt.Errorf("cuda: kernel %s: %w", k.Name, err)
		}
		passes := acc.Passes
		if passes <= 0 {
			passes = 1
		}
		for p := 0; p < passes; p++ {
			order := blocks
			if acc.Scatter {
				s.ctx.orderScratch = shuffleBlocksInto(s.ctx.rng, s.ctx.orderScratch[:0], blocks)
				order = s.ctx.orderScratch
			}
			done, err := s.ctx.drv.GPUAccessOn(k.GPU, order, acc.Mode, cur)
			if err != nil {
				return fmt.Errorf("cuda: kernel %s: %w", k.Name, err)
			}
			cur = done
		}
	}

	// Each GPU's compute engine is exclusive: concurrent kernels on the
	// same device serialize here; kernels on different GPUs overlap.
	_, end := s.ctx.computes[k.GPU].Reserve(cur, k.Compute)
	s.tail = end
	if k.Fn != nil {
		k.Fn()
	}
	return nil
}

// shuffleBlocksInto appends src to dst and Fisher-Yates-shuffles it in
// place, drawing the exact Intn sequence RNG.Perm draws — applying the same
// swaps to a copy of src yields element-for-element the order the old
// Perm-indexed shuffle produced, without allocating the index array or a
// fresh output slice per pass.
func shuffleBlocksInto(rng *sim.RNG, dst, src []*vaspace.Block) []*vaspace.Block {
	dst = append(dst, src...)
	for i := len(dst) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		dst[i], dst[j] = dst[j], dst[i]
	}
	return dst
}

// ComputeForFlops converts a floating-point operation count into a compute
// duration on this context's GPU.
func (c *Context) ComputeForFlops(flops float64) sim.Time {
	tflops := c.drv.Device().Profile().ComputeTFLOPS
	return sim.Time(flops / (tflops * 1e12) * float64(sim.Second))
}

// ComputeForBytes converts a local-memory byte volume into a compute
// duration at the GPU's DRAM bandwidth (for bandwidth-bound kernels).
func (c *Context) ComputeForBytes(bytes float64) sim.Time {
	bw := c.drv.Device().Profile().LocalBandwidth
	return sim.Time(bytes / bw * float64(sim.Second))
}

// Package cuda is a CUDA-like runtime over the simulated UVM driver: a
// context with streams, managed (unified) buffers, explicit device buffers
// with memcpy for the No-UVM baseline, prefetch, kernel launch with
// block-granular access traces, events, and the paper's two discard calls.
//
// Programs written against this package look like the pseudo-code in the
// paper's Listings 2–6: allocate managed buffers, optionally prefetch,
// launch kernels, discard dead buffers, synchronize. All timing is virtual;
// kernels may carry a functional Go payload so examples compute real
// results through the simulated memory system.
package cuda

import (
	"fmt"

	"uvmdiscard/internal/core"
	"uvmdiscard/internal/gpudev"
	"uvmdiscard/internal/metrics"
	"uvmdiscard/internal/sim"
	"uvmdiscard/internal/units"
	"uvmdiscard/internal/vaspace"
)

// Location is a prefetch destination.
type Location int

const (
	// ToGPU prefetches toward the device.
	ToGPU Location = iota
	// ToCPU prefetches toward the host.
	ToCPU
)

// Context owns the simulated GPUs, their driver, the host clock, and one
// compute engine per GPU.
type Context struct {
	drv      *core.Driver
	clock    *sim.Clock
	computes []*sim.Engine
	streams  []*Stream
	rng      *sim.RNG

	// Scratch block slices reused across kernel launches and host
	// accesses, so translating an access range to its block list does not
	// allocate per call (the context, like the driver, is single-threaded
	// per run). blockScratch holds the current access's in-order blocks;
	// orderScratch holds the shuffled visit order of a Scatter access and
	// is re-copied from blockScratch each pass. Neither survives past the
	// driver call that consumes it.
	blockScratch []*vaspace.Block
	orderScratch []*vaspace.Block
}

// NewContext builds a runtime context from a driver configuration.
func NewContext(cfg core.Config) (*Context, error) {
	drv, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	computes := make([]*sim.Engine, drv.NumGPUs())
	for i := range computes {
		name := "gpu0-compute"
		if i > 0 {
			name = fmt.Sprintf("gpu%d-compute", i)
		}
		computes[i] = sim.NewEngine(name)
	}
	// Pre-size the block scratch for a typical kernel-access window so a
	// fresh context's first launches do not replay the append growth chain
	// (experiment sweeps build one context per table cell). orderScratch
	// stays nil: only Scatter kernels fill it.
	const scratchCap = 256
	return &Context{
		drv:          drv,
		clock:        sim.NewClock(),
		computes:     computes,
		streams:      make([]*Stream, 0, 4),
		rng:          sim.NewRNG(1),
		blockScratch: make([]*vaspace.Block, 0, scratchCap),
	}, nil
}

// Driver exposes the underlying UVM driver.
func (c *Context) Driver() *core.Driver { return c.drv }

// Metrics exposes the driver's instrumentation.
func (c *Context) Metrics() *metrics.Collector { return c.drv.Metrics() }

// Clock returns the host clock.
func (c *Context) Clock() *sim.Clock { return c.clock }

// Compute returns the primary GPU's compute engine (for utilization
// reporting).
func (c *Context) Compute() *sim.Engine { return c.computes[0] }

// ComputeAt returns GPU i's compute engine.
func (c *Context) ComputeAt(i int) *sim.Engine { return c.computes[i] }

// NumGPUs returns how many GPUs the context drives.
func (c *Context) NumGPUs() int { return len(c.computes) }

// Stream creates a new CUDA stream. Operations on one stream execute in
// order; different streams overlap, which is how the "-opt" pipelines hide
// transfer latency behind computation.
func (c *Context) Stream(name string) *Stream {
	s := &Stream{ctx: c, name: name}
	c.streams = append(c.streams, s)
	return s
}

// Streams returns the context's streams in creation order. Checkpoint
// capture records each stream's name and tail; do not mutate the slice.
func (c *Context) Streams() []*Stream { return c.streams }

// RNGState returns the context RNG's internal state, for checkpointing.
func (c *Context) RNGState() uint64 { return c.rng.State() }

// RestoreRNGState overwrites the context RNG's state from a checkpoint.
func (c *Context) RestoreRNGState(s uint64) { c.rng.SetState(s) }

// RestoreStream recreates a stream with the given name and tail position.
// Unlike Stream, which always starts a stream at tail zero, this is the
// checkpoint-restore path: the resumed stream continues issuing work exactly
// where the snapshotted one left off.
func (c *Context) RestoreStream(name string, tail sim.Time) *Stream {
	s := &Stream{ctx: c, name: name, tail: tail}
	c.streams = append(c.streams, s)
	return s
}

// RestoreBuffer wraps an already-reconstituted allocation in a Buffer
// without charging cudaMallocManaged time — the interrupted run already paid
// it, and the charge lives in the restored clock and API-time counters.
func (c *Context) RestoreBuffer(a *vaspace.Alloc) *Buffer {
	return &Buffer{ctx: c, alloc: a}
}

// DeviceSynchronize blocks the host until all streams have drained,
// returning the new host time.
func (c *Context) DeviceSynchronize() sim.Time {
	t := c.clock.Now()
	for _, s := range c.streams {
		t = sim.Max(t, s.tail)
	}
	return c.clock.WaitUntil(t)
}

// Elapsed returns the simulation makespan so far: the host clock after a
// DeviceSynchronize-equivalent drain of every stream and engine.
func (c *Context) Elapsed() sim.Time {
	t := c.clock.Now()
	for _, s := range c.streams {
		t = sim.Max(t, s.tail)
	}
	for _, e := range c.computes {
		t = sim.Max(t, e.FreeAt())
	}
	t = sim.Max(t, c.drv.EngineDMA().FreeAt())
	t = sim.Max(t, c.drv.EnginePeer().FreeAt())
	return t
}

// Buffer is a managed (unified-memory) buffer.
type Buffer struct {
	ctx   *Context
	alloc *vaspace.Alloc
}

// MallocManaged allocates unified memory (Listing 2's cudaMallocManaged):
// VA space only; physical pages appear on first touch.
func (c *Context) MallocManaged(name string, size units.Size) (*Buffer, error) {
	c.clock.Advance(c.drv.Costs().MallocManaged.Eval(size))
	a, err := c.drv.AllocManaged(name, size)
	if err != nil {
		return nil, err
	}
	c.drv.Metrics().AddAPITime("cudaMallocManaged", c.drv.Costs().MallocManaged.Eval(size))
	return &Buffer{ctx: c, alloc: a}, nil
}

// Free releases a managed buffer (cudaFree on UVM memory).
func (b *Buffer) Free() error {
	cost := b.ctx.drv.Costs().Free.Eval(b.alloc.Size())
	b.ctx.clock.Advance(cost)
	b.ctx.drv.Metrics().AddAPITime("cudaFree", cost)
	return b.ctx.drv.FreeManaged(b.alloc)
}

// Alloc exposes the underlying allocation.
func (b *Buffer) Alloc() *vaspace.Alloc { return b.alloc }

// Name returns the buffer's debug name.
func (b *Buffer) Name() string { return b.alloc.Name() }

// Size returns the buffer's size in bytes.
func (b *Buffer) Size() units.Size { return b.alloc.Size() }

// Data returns the buffer's functional backing bytes (host-side Go memory;
// the simulator models placement and movement, the payload carries values).
func (b *Buffer) Data() []byte { return b.alloc.Data() }

// HostWrite models host code writing [off, off+len): CPU faults populate or
// migrate the covered blocks.
func (b *Buffer) HostWrite(off, length units.Size) error {
	return b.hostAccess(off, length, core.Write)
}

// HostRead models host code reading [off, off+len).
func (b *Buffer) HostRead(off, length units.Size) error {
	return b.hostAccess(off, length, core.Read)
}

func (b *Buffer) hostAccess(off, length units.Size, mode core.AccessMode) error {
	done, err := b.ctx.drv.CPUAccessRange(b.alloc, off, length, mode, b.ctx.clock.Now())
	if err != nil {
		return err
	}
	b.ctx.clock.WaitUntil(done) // host accesses are synchronous
	return nil
}

// DeviceBuffer is a classic cudaMalloc'd device allocation for the No-UVM
// baseline: permanently GPU-resident, moved only by explicit memcpy.
type DeviceBuffer struct {
	ctx    *Context
	chunks []*gpudev.Chunk
	size   units.Size
}

// Malloc allocates a device buffer (cudaMalloc). Fails when it does not
// fit — the Listing 4 limitation.
func (c *Context) Malloc(size units.Size) (*DeviceBuffer, error) {
	cost := c.drv.Costs().Malloc.Eval(size)
	c.clock.Advance(cost)
	c.drv.Metrics().AddAPITime("cudaMalloc", cost)
	chunks, err := c.drv.MallocDevice(size)
	if err != nil {
		return nil, err
	}
	return &DeviceBuffer{ctx: c, chunks: chunks, size: size}, nil
}

// Free releases the device buffer (cudaFree).
func (db *DeviceBuffer) Free() {
	cost := db.ctx.drv.Costs().Free.Eval(db.size)
	db.ctx.clock.Advance(cost)
	db.ctx.drv.Metrics().AddAPITime("cudaFree", cost)
	db.ctx.drv.FreeDevice(db.chunks)
	db.chunks = nil
}

// Size returns the device buffer size.
func (db *DeviceBuffer) Size() units.Size { return db.size }

// Event is a CUDA event for cross-stream ordering.
type Event struct {
	t        sim.Time
	recorded bool
}

// NewEvent returns an unrecorded event.
func (c *Context) NewEvent() *Event { return &Event{} }

// Time returns the recorded completion time.
func (e *Event) Time() sim.Time { return e.t }

// Recorded reports whether the event has been recorded on a stream.
func (e *Event) Recorded() bool { return e.recorded }

// Stream is an in-order queue of device operations.
type Stream struct {
	ctx  *Context
	name string
	tail sim.Time
}

// Name returns the stream's name.
func (s *Stream) Name() string { return s.name }

// Tail returns the completion time of the last enqueued operation.
func (s *Stream) Tail() sim.Time { return s.tail }

// ready computes when the next op may start, charging issueCost to the
// host clock.
func (s *Stream) ready(issueCost sim.Time) sim.Time {
	s.ctx.clock.Advance(issueCost)
	return sim.Max(s.tail, s.ctx.clock.Now())
}

// Synchronize blocks the host until the stream drains.
func (s *Stream) Synchronize() sim.Time {
	return s.ctx.clock.WaitUntil(s.tail)
}

// RecordEvent records an event at the stream's current tail.
func (s *Stream) RecordEvent(e *Event) {
	e.t = s.tail
	e.recorded = true
}

// WaitEvent makes subsequent operations on s wait for e.
func (s *Stream) WaitEvent(e *Event) {
	if !e.recorded {
		return
	}
	s.tail = sim.Max(s.tail, e.t)
}

// MemAdvise applies a cudaMemAdvise-style placement hint to
// [off, off+len): preferred location and read-mostly duplication compose
// with prefetch and discard.
func (s *Stream) MemAdvise(b *Buffer, off, length units.Size, adv core.Advice) error {
	start := s.ready(sim.Micros(4))
	s.ctx.drv.Metrics().AddAPITime("cudaMemAdvise", sim.Micros(4))
	done, err := s.ctx.drv.MemAdvise(b.alloc, off, length, adv, start)
	if err != nil {
		return err
	}
	s.tail = done
	return nil
}

// MemAdviseAll applies advice to the whole buffer.
func (s *Stream) MemAdviseAll(b *Buffer, adv core.Advice) error {
	return s.MemAdvise(b, 0, b.Size(), adv)
}

// MemPrefetchAsync enqueues a cudaMemPrefetchAsync of [off, off+len) toward
// dst. Under UvmDiscardLazy this is also the mandatory dirty-bit-setting
// operation before re-using a discarded range (§5.2).
func (s *Stream) MemPrefetchAsync(b *Buffer, off, length units.Size, dst Location) error {
	costs := s.ctx.drv.Costs()
	start := s.ready(costs.PrefetchIssue)
	s.ctx.drv.Metrics().AddAPITime("cudaMemPrefetchAsync", costs.PrefetchIssue)
	var done sim.Time
	var err error
	if dst == ToGPU {
		done, err = s.ctx.drv.PrefetchToGPU(b.alloc, off, length, start)
	} else {
		done, err = s.ctx.drv.PrefetchToCPU(b.alloc, off, length, start)
	}
	if err != nil {
		return err
	}
	s.tail = done
	return nil
}

// PrefetchAll prefetches the whole buffer.
func (s *Stream) PrefetchAll(b *Buffer, dst Location) error {
	return s.MemPrefetchAsync(b, 0, b.Size(), dst)
}

// PrefetchAllTo prefetches the whole buffer to a specific GPU (multi-GPU
// systems).
func (s *Stream) PrefetchAllTo(b *Buffer, gpu int) error {
	costs := s.ctx.drv.Costs()
	start := s.ready(costs.PrefetchIssue)
	s.ctx.drv.Metrics().AddAPITime("cudaMemPrefetchAsync", costs.PrefetchIssue)
	done, err := s.ctx.drv.PrefetchToGPUOn(gpu, b.alloc, 0, b.Size(), start)
	if err != nil {
		return err
	}
	s.tail = done
	return nil
}

// DiscardAsync enqueues an eager UvmDiscard of [off, off+len) (§5.1),
// stream-ordered like a memory operation (§4.2).
func (s *Stream) DiscardAsync(b *Buffer, off, length units.Size) error {
	return s.discardAsync(b, off, length, false)
}

// DiscardLazyAsync enqueues a UvmDiscardLazy (§5.2).
func (s *Stream) DiscardLazyAsync(b *Buffer, off, length units.Size) error {
	return s.discardAsync(b, off, length, true)
}

// DiscardAll discards the whole buffer.
func (s *Stream) DiscardAll(b *Buffer) error { return s.DiscardAsync(b, 0, b.Size()) }

// DiscardAddrAsync discards [va, va+length) given a raw virtual address —
// the shape of the real UvmDiscard call, which "takes arguments defining a
// virtual memory region" (§4). The address must fall inside a live managed
// allocation.
func (s *Stream) DiscardAddrAsync(va uint64, length units.Size) error {
	b, off, err := s.resolveVA(va, length)
	if err != nil {
		return err
	}
	return s.DiscardAsync(b, off, length)
}

// DiscardLazyAddrAsync is the lazy flavor of DiscardAddrAsync.
func (s *Stream) DiscardLazyAddrAsync(va uint64, length units.Size) error {
	b, off, err := s.resolveVA(va, length)
	if err != nil {
		return err
	}
	return s.DiscardLazyAsync(b, off, length)
}

// resolveVA maps a raw address range onto (buffer, offset).
func (s *Stream) resolveVA(va uint64, length units.Size) (*Buffer, units.Size, error) {
	a := s.ctx.drv.Space().Lookup(va)
	if a == nil {
		return nil, 0, fmt.Errorf("cuda: address %#x is not managed memory", va)
	}
	off := units.Size(va - a.Base())
	if off+length > a.Size() {
		return nil, 0, fmt.Errorf("cuda: range [%#x,+%d) crosses the end of %s",
			va, length, a.Name())
	}
	return &Buffer{ctx: s.ctx, alloc: a}, off, nil
}

// DiscardLazyAll lazily discards the whole buffer.
func (s *Stream) DiscardLazyAll(b *Buffer) error { return s.DiscardLazyAsync(b, 0, b.Size()) }

func (s *Stream) discardAsync(b *Buffer, off, length units.Size, lazy bool) error {
	costs := s.ctx.drv.Costs()
	var apiCost sim.Time
	var api string
	if lazy {
		apiCost, api = costs.DiscardLazy.Eval(length), "UvmDiscardLazy"
	} else {
		apiCost, api = costs.Discard.Eval(length), "UvmDiscard"
	}
	// The call cost is paid on the host (it waits for GPU acknowledgement
	// of PTE/TLB work for the eager flavor — that is what Table 2
	// measures); the state transition applies at stream order.
	start := s.ready(apiCost)
	s.ctx.drv.Metrics().AddAPITime(api, apiCost)
	var done sim.Time
	var err error
	if lazy {
		done, err = s.ctx.drv.DiscardLazy(b.alloc, off, length, start)
	} else {
		done, err = s.ctx.drv.Discard(b.alloc, off, length, start)
	}
	if err != nil {
		return err
	}
	s.tail = done
	return nil
}

// MemcpyHostToDevice enqueues an explicit H2D copy (No-UVM baseline).
func (s *Stream) MemcpyHostToDevice(n units.Size) {
	start := s.ready(sim.Micros(5))
	s.tail = s.ctx.drv.ExplicitCopy(metrics.H2D, n, start)
}

// MemcpyDeviceToHost enqueues an explicit D2H copy.
func (s *Stream) MemcpyDeviceToHost(n units.Size) {
	start := s.ready(sim.Micros(5))
	s.tail = s.ctx.drv.ExplicitCopy(metrics.D2H, n, start)
}

// String implements fmt.Stringer.
func (s *Stream) String() string {
	return fmt.Sprintf("stream(%s, tail=%v)", s.name, s.tail)
}

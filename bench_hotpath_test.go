package uvmdiscard_test

// Hot-path micro-benchmarks for the driver's warm kernel-access loop: a
// resident buffer re-accessed by kernels, the path every steady-state
// launch takes once data is on the GPU. Unlike the table benchmarks these
// isolate per-launch cost from experiment-harness construction, and the
// AllocsPerRun test pins the path's allocation-free property so a
// regression fails `go test`, not just a benchmark diff.

import (
	"testing"

	"uvmdiscard"
)

// warmSetup builds a context with one GPU-resident buffer and a kernel
// that re-reads it: every access is a warm hit (no faults, no migration).
func warmSetup(tb testing.TB) (*uvmdiscard.Stream, uvmdiscard.Kernel) {
	tb.Helper()
	ctx, err := uvmdiscard.NewContext(uvmdiscard.Config{GPU: uvmdiscard.RTX3080Ti()})
	if err != nil {
		tb.Fatal(err)
	}
	buf, err := ctx.MallocManaged("resident", 64*uvmdiscard.MiB)
	if err != nil {
		tb.Fatal(err)
	}
	s := ctx.Stream("main")
	if err := s.PrefetchAll(buf, uvmdiscard.ToGPU); err != nil {
		tb.Fatal(err)
	}
	// The access list is hoisted exactly as the workloads hoist theirs:
	// the launch loop must not rebuild step-invariant kernel specs.
	k := uvmdiscard.Kernel{
		Name: "rescan",
		Accesses: []uvmdiscard.Access{
			{Buf: buf, Mode: uvmdiscard.Read},
		},
	}
	return s, k
}

func BenchmarkWarmKernelLaunch(b *testing.B) {
	s, k := warmSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := s.Launch(k); err != nil {
			b.Fatal(err)
		}
	}
}

func TestWarmKernelLaunchAllocFree(t *testing.T) {
	s, k := warmSetup(t)
	if err := s.Launch(k); err != nil { // warm the scratch buffers
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if err := s.Launch(k); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("warm kernel launch allocates %v times per run, want 0", allocs)
	}
}

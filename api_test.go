package uvmdiscard_test

import (
	"testing"

	"uvmdiscard"
)

// The facade must support the full Listing 2/3 lifecycle without touching
// internal packages.
func TestPublicAPILifecycle(t *testing.T) {
	ctx, err := uvmdiscard.NewContext(uvmdiscard.Config{
		GPU:   uvmdiscard.GenericGPU(16 * uvmdiscard.MiB),
		Link:  uvmdiscard.PCIe3(),
		Trace: uvmdiscard.NewTraceRecorder(),
	})
	if err != nil {
		t.Fatal(err)
	}
	buf, err := ctx.MallocManaged("x", 4*uvmdiscard.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if err := buf.HostWrite(0, buf.Size()); err != nil {
		t.Fatal(err)
	}
	s := ctx.Stream("s")
	if err := s.PrefetchAll(buf, uvmdiscard.ToGPU); err != nil {
		t.Fatal(err)
	}
	if err := s.Launch(uvmdiscard.Kernel{
		Name:     "k",
		Compute:  ctx.ComputeForBytes(float64(buf.Size())),
		Accesses: []uvmdiscard.Access{{Buf: buf, Mode: uvmdiscard.Read}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.DiscardAll(buf); err != nil {
		t.Fatal(err)
	}
	if err := s.DiscardLazyAll(buf); err != nil {
		t.Fatal(err)
	}
	ctx.DeviceSynchronize()

	if ctx.Metrics().Traffic() == 0 {
		t.Error("no traffic recorded")
	}
	an := uvmdiscard.AnalyzeRMT(ctx.Driver().Trace())
	if an.Total() == 0 {
		t.Error("trace recorded nothing")
	}
	if ctx.Elapsed() <= 0 {
		t.Error("no virtual time elapsed")
	}
}

func TestPublicAPIConstructors(t *testing.T) {
	if uvmdiscard.RTX3080Ti().Name == "" || uvmdiscard.GTX1070().Name == "" {
		t.Error("profile constructors broken")
	}
	if uvmdiscard.PCIe4().PeakBandwidth() <= uvmdiscard.PCIe3().PeakBandwidth() {
		t.Error("link presets broken")
	}
	p := uvmdiscard.DefaultParams()
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
	if uvmdiscard.DefaultAPICosts().Discard == nil {
		t.Error("cost models broken")
	}
	if uvmdiscard.DefaultHost().Capacity() == 0 {
		t.Error("host model broken")
	}
	if uvmdiscard.FormatSize(2*uvmdiscard.MiB) != "2 MiB" {
		t.Error("FormatSize broken")
	}
	if uvmdiscard.BlockSize != 512*uvmdiscard.PageSize {
		t.Error("size constants inconsistent")
	}
}

// Multi-GPU and memory advice through the public facade.
func TestPublicAPIMultiGPUAndAdvice(t *testing.T) {
	ctx, err := uvmdiscard.NewContext(uvmdiscard.Config{
		GPU:      uvmdiscard.GenericGPU(16 * uvmdiscard.MiB),
		PeerGPUs: []uvmdiscard.GPUProfile{uvmdiscard.GenericGPU(16 * uvmdiscard.MiB)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ctx.NumGPUs() != 2 {
		t.Fatalf("GPUs = %d", ctx.NumGPUs())
	}
	buf, _ := ctx.MallocManaged("x", 4*uvmdiscard.MiB)
	s := ctx.Stream("s")
	if err := s.MemAdviseAll(buf, uvmdiscard.AdviseSetReadMostly); err != nil {
		t.Fatal(err)
	}
	if err := s.Launch(uvmdiscard.Kernel{Name: "k", GPU: 1,
		Accesses: []uvmdiscard.Access{{Buf: buf, Mode: uvmdiscard.Write}}}); err != nil {
		t.Fatal(err)
	}
	if err := s.PrefetchAllTo(buf, 0); err != nil {
		t.Fatal(err)
	}
	if peer, _ := ctx.Metrics().Peer(); peer == 0 {
		t.Error("no peer traffic recorded")
	}
}

// The advisor is reachable from the facade.
func TestPublicAPIAdvisor(t *testing.T) {
	ctx, err := uvmdiscard.NewContext(uvmdiscard.Config{
		GPU:   uvmdiscard.GenericGPU(8 * uvmdiscard.MiB),
		Trace: uvmdiscard.NewTraceRecorder(),
	})
	if err != nil {
		t.Fatal(err)
	}
	buf, _ := ctx.MallocManaged("tmp", 6*uvmdiscard.MiB)
	other, _ := ctx.MallocManaged("live", 6*uvmdiscard.MiB)
	s := ctx.Stream("s")
	for _, k := range []uvmdiscard.Kernel{
		{Name: "a", Accesses: []uvmdiscard.Access{{Buf: buf, Mode: uvmdiscard.Write}}},
		{Name: "b", Accesses: []uvmdiscard.Access{{Buf: other, Mode: uvmdiscard.Write}}},
		{Name: "c", Accesses: []uvmdiscard.Access{{Buf: buf, Mode: uvmdiscard.Write}}},
	} {
		if err := s.Launch(k); err != nil {
			t.Fatal(err)
		}
	}
	rep := uvmdiscard.AdviseDiscards(ctx)
	if len(rep.Recommendations) == 0 {
		t.Fatal("no recommendations")
	}
	if rep.Recommendations[0].AllocName != "tmp" {
		t.Errorf("top = %q", rep.Recommendations[0].AllocName)
	}
}

func TestPublicAPIA100AndNVLink(t *testing.T) {
	if uvmdiscard.A100().Name == "" {
		t.Error("A100 profile broken")
	}
	nv := uvmdiscard.NVLink()
	if !nv.Coherent() {
		t.Error("NVLink should be coherent")
	}
	p := uvmdiscard.DefaultParams()
	p.RemoteAccessMigrateThreshold = 3
	ctx, err := uvmdiscard.NewContext(uvmdiscard.Config{
		GPU: uvmdiscard.GenericGPU(16 * uvmdiscard.MiB), Link: nv, Params: &p,
	})
	if err != nil {
		t.Fatal(err)
	}
	buf, _ := ctx.MallocManaged("x", 2*uvmdiscard.MiB)
	if err := buf.HostWrite(0, buf.Size()); err != nil {
		t.Fatal(err)
	}
	s := ctx.Stream("s")
	if err := s.Launch(uvmdiscard.Kernel{Name: "k",
		Accesses: []uvmdiscard.Access{{Buf: buf, Mode: uvmdiscard.Read}}}); err != nil {
		t.Fatal(err)
	}
	// First access on a coherent link with a threshold is served remotely.
	if ctx.Metrics().Bytes(uvmdiscard.H2D, uvmdiscard.CauseRemote) == 0 {
		t.Error("no remote traffic on coherent link")
	}
}

package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"uvmdiscard/internal/promexp"
)

// TestSmokeMetricsScrape is the observability acceptance test run against
// the real daemon binary: submit a run over HTTP, follow its SSE progress
// stream, and scrape GET /metrics — the exposition must pass the promexp
// validator (the same checker `uvmlint -expfmt` applies in CI) and carry
// all three metric layers.
func TestSmokeMetricsScrape(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	bin := buildUvmsimd(t)
	d := startDaemon(t, bin, t.TempDir())

	// Submit a quick discard-system run and watch its progress stream to
	// completion: the stream must end with a "done" event.
	body, _ := json.Marshal(map[string]any{
		"workload": "fir", "quick": true, "system": "discard",
	})
	resp, err := http.Post(d.base+"/v1/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var js smokeJob
	if err := json.NewDecoder(resp.Body).Decode(&js); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}

	stream, err := http.Get(d.base + "/v1/jobs/" + js.ID + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("progress content type %q", ct)
	}
	events, done := 0, false
	sc := bufio.NewScanner(stream.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "event: ") {
			events++
			if line == "event: done" {
				done = true
				break
			}
		}
	}
	if !done || events < 2 {
		t.Fatalf("progress stream: %d events, done=%v", events, done)
	}
	d.waitDone(t, js.ID, time.Minute)

	// Scrape and validate.
	mresp, err := http.Get(d.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", mresp.StatusCode)
	}
	scrapeBody, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if problems := promexp.CheckText(scrapeBody); len(problems) != 0 {
		t.Fatalf("exposition invalid:\n%s", strings.Join(problems, "\n"))
	}
	text := string(scrapeBody)
	for _, want := range []string{
		"uvmsimd_jobs_admitted_total 1",
		`uvmsimd_jobs_finished_total{outcome="done"} 1`,
		"uvmsimd_job_duration_seconds_bucket",
		"uvmsim_transfer_bytes_total{",
		"uvmsim_discard_calls_total",
		`device="gpu0"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

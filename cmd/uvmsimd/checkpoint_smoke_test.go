package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestSmokeCheckpointResume is the per-run crash-safety acceptance test: a
// checkpointed fir run interrupted mid-job leaves an fsync'd snapshot under
// -data-dir; the whole daemon is then SIGKILL'd (no drain, no goodbye), and
// a fresh daemon over the same data dir, given the identical submission,
// resumes from the snapshot and renders output byte-identical to an
// uninterrupted run.
//
// The interruption is a 140ms sim budget: quick fir spends ~133ms of
// simulated time on host input generation, snapshots all 8 step boundaries
// while the windows are issued, and finishes near 160ms — so the budget
// always fires during the final drain, after snapshots exist.

func (d *daemon) submitRun(t *testing.T, body map[string]any) smokeJob {
	t.Helper()
	raw, _ := json.Marshal(body)
	resp, err := http.Post(d.base+"/v1/runs", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var js smokeJob
	if err := json.NewDecoder(resp.Body).Decode(&js); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit run: %d (%+v)", resp.StatusCode, js)
	}
	return js
}

// waitJobState polls until the job reaches one of the wanted terminal
// states, failing on any other terminal state.
func (d *daemon) waitJobState(t *testing.T, id string, timeout time.Duration, want ...string) smokeJob {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var last smokeJob
	for time.Now().Before(deadline) {
		resp, err := http.Get(d.base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&last)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range want {
			if last.State == w {
				return last
			}
		}
		switch last.State {
		case "done", "failed", "canceled", "deadline_expired", "budget_expired", "shed":
			t.Fatalf("job %s ended %s, want one of %v: %+v", id, last.State, want, last)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %v (last: %+v)", id, want, last)
	return smokeJob{}
}

func TestSmokeCheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	bin := buildUvmsimd(t)
	dataDir := t.TempDir()
	ckptPath := filepath.Join(dataDir, "smoke.ckpt")

	run := map[string]any{"workload": "fir", "quick": true, "checkpoint": "smoke"}
	interrupted := map[string]any{
		"workload": "fir", "quick": true, "checkpoint": "smoke", "sim_budget_ms": 140,
	}

	// Phase 1: the run is interrupted by its sim budget, leaving a durable
	// snapshot; the daemon is then killed with SIGKILL.
	d1 := startDaemon(t, bin, t.TempDir(), "-data-dir", dataDir)
	j1 := d1.submitRun(t, interrupted)
	d1.waitJobState(t, j1.ID, 2*time.Minute, "budget_expired")
	if fi, err := os.Stat(ckptPath); err != nil {
		t.Fatalf("interrupted run left no snapshot: %v", err)
	} else {
		t.Logf("killed daemon with a %d-byte snapshot on disk", fi.Size())
	}
	if err := d1.cmd.Process.Kill(); err != nil { // SIGKILL: no drain, no fsync help
		t.Fatal(err)
	}
	_, _ = d1.cmd.Process.Wait()

	// Phase 2: a fresh daemon over the same data dir resumes the run.
	d2 := startDaemon(t, bin, t.TempDir(), "-data-dir", dataDir)
	ref := d2.submitRun(t, map[string]any{"workload": "fir", "quick": true})
	want := d2.waitJobState(t, ref.ID, 2*time.Minute, "done")

	j2 := d2.submitRun(t, run)
	got := d2.waitJobState(t, j2.ID, 2*time.Minute, "done")
	if got.Resumed < 1 {
		t.Errorf("resumed = %d, want >= 1 (snapshot survived the SIGKILL)", got.Resumed)
	}
	if got.Output != want.Output {
		t.Errorf("resumed run output is not byte-identical to an uninterrupted run\n--- got ---\n%s\n--- want ---\n%s",
			got.Output, want.Output)
	}
	// A clean completion reclaims the snapshot.
	if _, err := os.Stat(ckptPath); !os.IsNotExist(err) {
		t.Errorf("finished run's snapshot not deleted (stat err %v)", err)
	}
}

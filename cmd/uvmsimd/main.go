// Command uvmsimd is the uvmdiscard simulation service: a long-running
// HTTP/JSON daemon that runs workload simulations and experiment batches on
// a bounded worker pool with production-grade robustness — load shedding
// under backpressure (503 + Retry-After), per-run wall-clock deadlines and
// sim-time budgets enforced by a watchdog inside the driver loop, per-request
// panic isolation, graceful shutdown (in-flight runs drain, queued runs are
// shed), crash-safe batch journals: a batch killed mid-run (kill -9
// included) resumes from its journal and renders byte-identical output —
// and, with -data-dir, crash-survivable checkpointed runs: a fir run
// submitted with a "checkpoint" name persists an fsync'd snapshot of the
// live simulation at every step boundary, and a re-submitted run after a
// SIGKILL of the whole daemon resumes from the last snapshot, producing
// bytes identical to an uninterrupted run.
//
// Endpoints:
//
//	POST   /v1/runs                  {"workload":"fir","system":"UvmDiscard","ovsp":200,"quick":true}
//	POST   /v1/batches               {"experiments":["T3","T4"],"quick":true,"journal":"nightly"}
//	GET    /v1/jobs                  list jobs (bounded: see -retain)
//	GET    /v1/jobs/{id}             job status, output when finished
//	GET    /v1/jobs/{id}/progress    live progress stream (Server-Sent Events)
//	DELETE /v1/jobs/{id}             cancel a queued or running job
//	GET    /v1/experiments           available experiment IDs
//	GET    /v1/metrics               admission/outcome counters (JSON)
//	GET    /metrics                  Prometheus text exposition (DESIGN.md §12)
//	GET    /healthz                  ok | draining
//
// With -worker -coordinator=URL the daemon instead joins a fleet (DESIGN.md
// §14): it serves nothing and pulls leased jobs from a uvmfleet
// coordinator, renewing each lease at runctl checkpoints and reporting
// results idempotently.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"uvmdiscard/internal/fleet"
	"uvmdiscard/internal/service"
	"uvmdiscard/internal/sim"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8077", "listen address (use :0 for an ephemeral port)")
		workers    = flag.Int("workers", 0, "simulation worker goroutines (0 = GOMAXPROCS)")
		queue      = flag.Int("queue", 64, "admission queue depth; submits beyond it are shed with 503")
		journalDir = flag.String("journal-dir", "", "directory for crash-safe batch journals (empty disables)")
		dataDir    = flag.String("data-dir", "", "directory for per-run checkpoint snapshots (empty disables checkpointed runs)")
		wallBudget = flag.Duration("wall-budget", 2*time.Minute, "default per-job wall-clock deadline")
		simBudget  = flag.Duration("sim-budget", 0, "default per-run simulated-time budget (0 = unlimited)")
		drainWait  = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain window for in-flight runs")
		retain     = flag.Int("retain", 256, "finished jobs kept for GET /v1/jobs; oldest terminal jobs are evicted beyond this")

		workerMode  = flag.Bool("worker", false, "run as a fleet worker pulling leased jobs instead of serving HTTP")
		coordinator = flag.String("coordinator", "", "coordinator base URL for -worker mode (e.g. http://127.0.0.1:8078)")
		workerName  = flag.String("worker-name", "", "fleet worker name (-worker mode; default <hostname>-<pid>)")
		capacity    = flag.Int("capacity", 0, "concurrent leased jobs in -worker mode (0 = -workers, then GOMAXPROCS)")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "uvmsimd: ", log.LstdFlags)
	if *workerMode {
		runWorker(logger, *coordinator, *workerName, *capacity, *workers)
		return
	}
	if *journalDir != "" {
		if err := os.MkdirAll(*journalDir, 0o755); err != nil {
			logger.Fatalf("journal dir: %v", err)
		}
	}
	if *dataDir != "" {
		if err := os.MkdirAll(*dataDir, 0o755); err != nil {
			logger.Fatalf("data dir: %v", err)
		}
	}
	srv := service.New(service.Config{
		Workers:           *workers,
		QueueDepth:        *queue,
		JournalDir:        *journalDir,
		DataDir:           *dataDir,
		DefaultWallBudget: *wallBudget,
		DefaultSimBudget:  sim.Time(*simBudget),
		RetainJobs:        *retain,
		Log:               logger,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatalf("listen: %v", err)
	}
	// The smoke harness parses this line to discover an ephemeral port.
	fmt.Printf("uvmsimd listening on %s\n", ln.Addr())
	//uvmlint:ignore errsink -- stdout may be a pipe where fsync is unsupported; the line above is what matters
	os.Stdout.Sync()

	hs := service.NewHTTPServer(srv.Handler())
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		logger.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}
	logger.Printf("shutting down: draining in-flight runs, shedding queue")

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		logger.Printf("drain window expired, in-flight runs canceled: %v", err)
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	_ = hs.Shutdown(shutCtx)
	logger.Printf("bye")
}

// runWorker is the -worker mode: join the fleet behind the coordinator and
// pull leased jobs until interrupted. Worker death needs no goodbye — the
// coordinator discovers it by heartbeat timeout and lease expiry, which is
// the whole point of the protocol.
func runWorker(logger *log.Logger, coordinator, name string, capacity, workers int) {
	if coordinator == "" {
		logger.Fatalf("-worker requires -coordinator=URL")
	}
	if name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "uvmsimd"
		}
		name = fmt.Sprintf("%s-%d", sanitizeName(host), os.Getpid())
	}
	if capacity < 1 {
		capacity = workers
	}
	if capacity < 1 {
		capacity = runtime.GOMAXPROCS(0)
	}
	w := fleet.NewWorker(fleet.WorkerConfig{
		Name:     name,
		Capacity: capacity,
		Log:      logger,
	}, fleet.NewClient(coordinator))
	// The smoke harness parses this line, mirroring the serving banner.
	fmt.Printf("uvmsimd worker %s pulling from %s\n", name, coordinator)
	//uvmlint:ignore errsink -- stdout may be a pipe where fsync is unsupported; the line above is what matters
	os.Stdout.Sync()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := w.Run(ctx); err != nil && ctx.Err() == nil {
		logger.Fatalf("worker: %v", err)
	}
	logger.Printf("worker %s stopping", name)
}

// sanitizeName squeezes a hostname into the fleet's label-safe alphabet.
func sanitizeName(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '.', r == '_', r == '-':
			b.WriteRune(r)
		default:
			b.WriteRune('-')
		}
	}
	out := b.String()
	if out == "" {
		return "uvmsimd"
	}
	if len(out) > 40 {
		out = out[:40]
	}
	return out
}

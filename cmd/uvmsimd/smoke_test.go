package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"uvmdiscard/internal/experiments"
)

// smokeExperiments is the batch the kill/resume smoke runs: four quick-mode
// table experiments, long enough in aggregate that a kill usually lands
// mid-batch, short enough for CI.
var smokeExperiments = []string{"T3", "T4", "T5", "T6"}

// daemon is one uvmsimd process started by the smoke harness.
type daemon struct {
	cmd  *exec.Cmd
	base string // http://addr
}

func buildUvmsimd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "uvmsimd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// startDaemon launches uvmsimd on an ephemeral port and parses the listen
// address from its banner line.
func startDaemon(t *testing.T, bin, journalDir string, extraArgs ...string) *daemon {
	t.Helper()
	args := []string{
		"-addr", "127.0.0.1:0",
		"-journal-dir", journalDir,
		"-workers", "1",
		"-wall-budget", "5m",
	}
	args = append(args, extraArgs...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
	})
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "uvmsimd listening on "); ok {
			go func() { // keep draining stdout so the child never blocks
				for sc.Scan() {
				}
			}()
			return &daemon{cmd: cmd, base: "http://" + strings.TrimSpace(rest)}
		}
	}
	t.Fatalf("uvmsimd exited before printing its listen address (scan err: %v)", sc.Err())
	return nil
}

type smokeJob struct {
	ID      string `json:"id"`
	State   string `json:"state"`
	Output  string `json:"output"`
	Error   string `json:"error"`
	Resumed int    `json:"resumed"`
}

func (d *daemon) submitBatch(t *testing.T, journal string) smokeJob {
	t.Helper()
	body, _ := json.Marshal(map[string]any{
		"experiments": smokeExperiments,
		"quick":       true,
		"parallelism": 1,
		"journal":     journal,
	})
	resp, err := http.Post(d.base+"/v1/batches", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var js smokeJob
	if err := json.NewDecoder(resp.Body).Decode(&js); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit batch: %d (%+v)", resp.StatusCode, js)
	}
	return js
}

func (d *daemon) waitDone(t *testing.T, id string, timeout time.Duration) smokeJob {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var last smokeJob
	for time.Now().Before(deadline) {
		resp, err := http.Get(d.base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&last)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch last.State {
		case "done":
			return last
		case "failed", "canceled", "deadline_expired", "budget_expired", "shed":
			t.Fatalf("batch ended %s: %+v", last.State, last)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("batch %s never finished (last: %+v)", id, last)
	return smokeJob{}
}

// journalLines counts complete (newline-terminated) records in the journal.
func journalLines(path string) int {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	n := 0
	for _, line := range bytes.Split(raw, []byte("\n")) {
		if len(bytes.TrimSpace(line)) > 0 {
			n++
		}
	}
	if len(raw) > 0 && raw[len(raw)-1] != '\n' {
		n-- // torn tail is not a complete record
	}
	return n
}

// renderReference runs the same selection in-process, sequentially and
// uninterrupted, and renders it exactly as the service does: completed
// tables in selection order, one blank line after each.
func renderReference(t *testing.T) string {
	t.Helper()
	var sel []experiments.Experiment
	for _, id := range smokeExperiments {
		e, ok := experiments.Lookup(id)
		if !ok {
			t.Fatalf("unknown experiment %q", id)
		}
		sel = append(sel, e)
	}
	var out strings.Builder
	for _, r := range experiments.RunAll(nil, sel, experiments.Options{Quick: true}, 1, nil) {
		if r.Err != nil {
			t.Fatalf("reference run %s: %v", r.Experiment.ID, r.Err)
		}
		out.WriteString(r.Table.String())
		out.WriteByte('\n')
	}
	return out.String()
}

// TestSmokeKillResume is the crash-safety acceptance test: a journaled batch
// whose process is killed with SIGKILL mid-batch must, on restart and
// resubmission, resume from the journal and render output byte-identical to
// an uninterrupted sequential run.
func TestSmokeKillResume(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	bin := buildUvmsimd(t)
	journalDir := t.TempDir()
	journalPath := filepath.Join(journalDir, "smoke.jsonl")

	// Phase 1: start the service, submit the batch, and SIGKILL the process
	// as soon as the journal holds at least one complete record.
	d1 := startDaemon(t, bin, journalDir)
	d1.submitBatch(t, "smoke")
	killDeadline := time.Now().Add(3 * time.Minute)
	for journalLines(journalPath) < 1 {
		if time.Now().After(killDeadline) {
			t.Fatalf("journal %s never gained a complete record", journalPath)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := d1.cmd.Process.Kill(); err != nil { // SIGKILL: no drain, no fsync help
		t.Fatal(err)
	}
	_, _ = d1.cmd.Process.Wait()
	preKill := journalLines(journalPath)
	t.Logf("killed uvmsimd with %d/%d experiments journaled", preKill, len(smokeExperiments))

	// Phase 2: restart and resubmit the identical batch. Completed
	// experiments must be served from the journal, not re-run.
	d2 := startDaemon(t, bin, journalDir)
	job := d2.submitBatch(t, "smoke")
	final := d2.waitDone(t, job.ID, 5*time.Minute)
	if final.Resumed < 1 {
		t.Errorf("resumed = %d, want >= 1 (journal had %d records at kill)", final.Resumed, preKill)
	}
	if final.Resumed < preKill {
		t.Errorf("resumed = %d < %d records journaled before the kill", final.Resumed, preKill)
	}

	want := renderReference(t)
	if final.Output != want {
		t.Errorf("resumed batch output is not byte-identical to an uninterrupted run\n--- got ---\n%s\n--- want ---\n%s", final.Output, want)
	}

	// The resumed journal is complete: a third submission resumes everything.
	job3 := d2.submitBatch(t, "smoke")
	final3 := d2.waitDone(t, job3.ID, time.Minute)
	if final3.Resumed != len(smokeExperiments) {
		t.Errorf("third submission resumed %d, want all %d", final3.Resumed, len(smokeExperiments))
	}
	if final3.Output != want {
		t.Errorf("fully-resumed output differs from reference")
	}
}

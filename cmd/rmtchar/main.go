// Command rmtchar characterizes redundant memory transfers the way the
// paper's Figure 3 does: it runs a workload under plain UVM with
// driver-event tracing on, classifies every transfer as required or
// redundant, and prints the breakdown.
//
// Usage:
//
//	rmtchar -workload dl -model resnet53 -batches 30,56,85,115,150
//	rmtchar -workload fir -ovsp 200
//	rmtchar -workload hashjoin -ovsp 300 -system UvmDiscard
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"

	"uvmdiscard/internal/dnn"
	"uvmdiscard/internal/gpudev"
	"uvmdiscard/internal/pcie"
	"uvmdiscard/internal/trace"
	"uvmdiscard/internal/workloads"
	"uvmdiscard/internal/workloads/fir"
	"uvmdiscard/internal/workloads/hashjoin"
	"uvmdiscard/internal/workloads/radixsort"
)

var (
	advise = flag.Bool("advise", false, "print discard-insertion advice per run (§8 extension)")
	dump   = flag.String("dump", "", "write the last run's driver trace as JSON Lines to this file")
)

func main() {
	var (
		workload = flag.String("workload", "dl", "dl | fir | radixsort | hashjoin")
		system   = flag.String("system", "UVM-opt", "system to characterize")
		ovsp     = flag.Int("ovsp", 200, "oversubscription percent for the micro-benchmarks")
		model    = flag.String("model", "resnet53", "dl model")
		batches  = flag.String("batches", "30,56,85,115,150", "dl batch sweep")
		jobs     = flag.Int("j", runtime.GOMAXPROCS(0), "run independent sweep points across this many workers")
	)
	flag.Parse()

	sys := workloads.UVMOpt
	for _, s := range []workloads.System{workloads.UVMOpt, workloads.UvmDiscard, workloads.UvmDiscardLazy} {
		if strings.EqualFold(s.String(), *system) {
			sys = s
		}
	}

	p := workloads.Platform{GPU: gpudev.RTX3080Ti(), Gen: pcie.Gen4, TraceRMT: true}

	switch strings.ToLower(*workload) {
	case "dl", "dnn":
		m := map[string]func() *dnn.ModelSpec{
			"vgg16": dnn.VGG16, "darknet19": dnn.Darknet19,
			"resnet53": dnn.ResNet53, "rnn": dnn.RNN,
		}[strings.ToLower(*model)]
		if m == nil {
			fail(fmt.Errorf("unknown model %q", *model))
		}
		spec := m()
		var bs []int
		for _, s := range strings.Split(*batches, ",") {
			b, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fail(err)
			}
			bs = append(bs, b)
		}
		fmt.Printf("RMT characterization: %s training under %v (cf. Figure 3)\n\n", spec.Name, sys)
		fmt.Printf("%-8s %-12s %-12s %-12s %-12s %s\n",
			"batch", "total GB", "required", "redundant", "redundant%", "transfers")
		// Each batch size is an independent configuration with its own
		// context and model spec (dnn.Train never mutates the spec), so the
		// sweep fans out across workers; rows print in sweep order.
		results := make([]workloads.Result, len(bs))
		errs := make([]error, len(bs))
		sweep(len(bs), *jobs, func(i int) {
			r, err := dnn.Train(p, sys, dnn.TrainConfig{Model: spec, Batch: bs[i]})
			results[i], errs[i] = r.Result, err
		})
		for i, b := range bs {
			if errs[i] != nil {
				fail(errs[i])
			}
			printRow(fmt.Sprintf("%d", b), results[i])
		}
	case "fir":
		p.OversubPercent = *ovsp
		r, err := fir.Run(p, sys, fir.DefaultConfig())
		if err != nil {
			fail(err)
		}
		header(sys, *ovsp)
		printRow("fir", r)
	case "radixsort", "radix":
		p.OversubPercent = *ovsp
		r, err := radixsort.Run(p, sys, radixsort.DefaultConfig())
		if err != nil {
			fail(err)
		}
		header(sys, *ovsp)
		printRow("radix", r)
	case "hashjoin", "hash":
		p.OversubPercent = *ovsp
		r, err := hashjoin.Run(p, sys, hashjoin.DefaultConfig())
		if err != nil {
			fail(err)
		}
		header(sys, *ovsp)
		printRow("hashjoin", r)
	default:
		fail(fmt.Errorf("unknown workload %q", *workload))
	}
}

// sweep runs fn(0..n-1) across up to parallelism worker goroutines and
// waits for all of them.
func sweep(n, parallelism int, fn func(i int)) {
	if parallelism < 1 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > n {
		parallelism = n
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

func header(sys workloads.System, ovsp int) {
	fmt.Printf("RMT characterization under %v at %d%% oversubscription\n\n", sys, ovsp)
	fmt.Printf("%-8s %-12s %-12s %-12s %-12s %s\n",
		"run", "total GB", "required", "redundant", "redundant%", "transfers")
}

func dumpTrace(r workloads.Result) {
	if *dump == "" || r.Trace == nil {
		return
	}
	f, err := os.Create(*dump)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	if err := trace.WriteJSON(f, r.Trace); err != nil {
		fail(err)
	}
	fmt.Printf("\ntrace written to %s (%d events)\n", *dump, r.Trace.Len())
}

func printRow(label string, r workloads.Result) {
	a := r.Analysis
	if a == nil {
		a = &trace.Analysis{}
	}
	fmt.Printf("%-8s %-12.2f %-12.2f %-12.2f %-12.1f %d (%d redundant)\n",
		label, gb(a.Total()), gb(a.RequiredBytes), gb(a.Redundant()),
		100*a.RedundantFraction(), a.TransferCount, a.RedundantCount)
	if *advise && r.Advice != nil {
		fmt.Println()
		fmt.Print(r.Advice.String())
	}
	dumpTrace(r)
}

func gb(n uint64) float64 { return float64(n) / 1e9 }

func fail(err error) {
	fmt.Fprintf(os.Stderr, "rmtchar: %v\n", err)
	os.Exit(1)
}

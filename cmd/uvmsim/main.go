// Command uvmsim runs a single workload under one memory-management system
// and prints runtime, traffic, and driver instrumentation.
//
// Usage:
//
//	uvmsim -workload fir -system UvmDiscard -ovsp 200
//	uvmsim -workload radixsort -system UVM-opt -pcie 3
//	uvmsim -workload hashjoin -system UvmDiscardLazy -ovsp 300
//	uvmsim -workload dl -model resnet53 -batch 115 -system UvmDiscard
//	uvmsim -workload dl -model vgg16 -batch 60 -system PyTorch-LMS -gpu gtx1070
//	uvmsim -workload infer -batch 64 -discard -readmostly
//	uvmsim -workload fir -ovsp 200 -json
//	uvmsim -workload radixsort -ovsp 200 -faults seed=7,dma=0.05,unmap=0.01,fbcap=4
//	uvmsim -workload fir -ovsp 400 -cpuprofile cpu.out -memprofile mem.out
//	uvmsim -workload fir -ovsp 200 -checkpoint-out run.ckpt
//	uvmsim -workload fir -ovsp 200 -restore run.ckpt -checkpoint-out run.ckpt
//
// The -cpuprofile/-memprofile flags write pprof profiles of the run, the
// entry point `make profile` uses to attribute driver hot-path time
// (DESIGN.md §15).
//
// The -checkpoint-out/-restore flags (fir only) persist and resume the live
// simulation: -checkpoint-out durably rewrites a versioned, checksummed
// snapshot of the whole driver/engine/RNG state at every step boundary, and
// -restore resumes from such a snapshot, producing output byte-identical to
// an uninterrupted run (DESIGN.md §16). A torn or corrupt snapshot is
// rejected — the run restarts from zero rather than resume wrong state.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"uvmdiscard/internal/checkpoint"
	"uvmdiscard/internal/dnn"
	"uvmdiscard/internal/faultinject"
	"uvmdiscard/internal/gpudev"
	"uvmdiscard/internal/lms"
	"uvmdiscard/internal/pcie"
	"uvmdiscard/internal/units"
	"uvmdiscard/internal/workloads"
	"uvmdiscard/internal/workloads/fir"
	"uvmdiscard/internal/workloads/graph"
	"uvmdiscard/internal/workloads/hashjoin"
	"uvmdiscard/internal/workloads/radixsort"
)

var jsonOut = flag.Bool("json", false, "emit the result as JSON (for scripting)")

func main() {
	var (
		workload = flag.String("workload", "fir", "fir | radixsort | hashjoin | graph | dl | infer")
		system   = flag.String("system", "UVM-opt", "UVM-opt | UvmDiscard | UvmDiscardLazy | No-UVM | PyTorch-LMS")
		ovsp     = flag.Int("ovsp", 0, "oversubscription percent (0 = fits; 200/300/400 reserve GPU memory)")
		gen      = flag.Int("pcie", 4, "PCIe generation (3 or 4)")
		gpu      = flag.String("gpu", "3080ti", "3080ti | gtx1070")
		model    = flag.String("model", "vgg16", "dl model: vgg16 | darknet19 | resnet53 | rnn")
		batch    = flag.Int("batch", 75, "dl batch size")
		steps    = flag.Int("steps", 0, "dl training steps (0 = default)")
		disc     = flag.Bool("discard", false, "infer: discard activations")
		recomp   = flag.Bool("recompute", false, "dl: train with activation recomputation")
		readMost = flag.Bool("readmostly", false, "infer/graph: advise SetReadMostly on weights/edges")
		weights  = flag.String("weights", "18GiB", "infer: total served model weights")
		faults   = flag.String("faults", "", "fault-injection spec, e.g. seed=7,dma=0.02,unmap=0.005,poison=0.001,fbcap=8,slow=pcie@1ms+5ms*3")
		cpuprof  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprof  = flag.String("memprofile", "", "write a heap profile (after GC) to this file at exit")
		ckptOut  = flag.String("checkpoint-out", "", "fir: durably write a simulation snapshot to this file at every step boundary")
		restore  = flag.String("restore", "", "fir: resume from a snapshot file written by -checkpoint-out")
	)
	flag.Parse()

	ckptEnv, err := checkpointEnv(*ckptOut, *restore, *workload, *faults)
	if err != nil {
		fail(err)
	}

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprof != "" {
		defer writeMemProfile(*memprof)
	}

	sys, err := parseSystem(*system)
	if err != nil {
		fail(err)
	}
	p := workloads.Platform{
		Gen:            pcie.Generation(*gen),
		OversubPercent: *ovsp,
	}
	if *faults != "" {
		fcfg, err := faultinject.ParseSpec(*faults)
		if err != nil {
			fail(err)
		}
		p.Faults = fcfg
	}
	switch strings.ToLower(*gpu) {
	case "3080ti":
		p.GPU = gpudev.RTX3080Ti()
	case "gtx1070":
		p.GPU = gpudev.GTX1070()
	default:
		fail(fmt.Errorf("unknown GPU %q", *gpu))
	}

	switch strings.ToLower(*workload) {
	case "fir":
		res, err := fir.RunCheckpointed(p, sys, fir.DefaultConfig(), ckptEnv)
		if ckptEnv != nil && ckptEnv.Stats.Resumed {
			fmt.Fprintf(os.Stderr, "uvmsim: resumed from step %d (%d steps executed this run)\n",
				ckptEnv.Stats.ResumedFrom, ckptEnv.Stats.StepsExecuted)
		}
		report(res, err)
	case "radixsort", "radix":
		report(radixsort.Run(p, sys, radixsort.DefaultConfig()))
	case "hashjoin", "hash":
		report(hashjoin.Run(p, sys, hashjoin.DefaultConfig()))
	case "graph", "bfs":
		cfg := graph.DefaultConfig()
		cfg.ReadMostlyEdges = *readMost
		report(graph.Run(p, sys, cfg))
	case "infer", "inference":
		total, err := units.Parse(*weights)
		if err != nil {
			fail(err)
		}
		r, err := dnn.Infer(p, dnn.InferConfig{
			Model: dnn.LargeModel(total, 24), Batch: *batch, Requests: *steps,
			Discard: *disc, AdviseWeights: *readMost,
		})
		reportTrain(r, err)
	case "dl", "dnn":
		m, err := parseModel(*model)
		if err != nil {
			fail(err)
		}
		if sys == workloads.PyTorchLMS {
			r, err := lms.Train(p, lms.Config{Model: m, Batch: *batch, Steps: *steps})
			reportTrain(r, err)
			return
		}
		r, err := dnn.Train(p, sys, dnn.TrainConfig{
			Model: m, Batch: *batch, Steps: *steps, Recompute: *recomp,
		})
		reportTrain(r, err)
	default:
		fail(fmt.Errorf("unknown workload %q", *workload))
	}
}

// checkpointEnv wires the -checkpoint-out/-restore flags into a checkpoint
// environment, or nil when neither flag is set. Both are fir-only: the
// snapshot digest covers the whole deterministic simulation, which rules out
// fault injection, and the step-boundary consistency points are fir's.
func checkpointEnv(out, restore, workload, faults string) (*checkpoint.Env, error) {
	if out == "" && restore == "" {
		return nil, nil
	}
	if wl := strings.ToLower(workload); wl != "fir" {
		return nil, fmt.Errorf("-checkpoint-out/-restore support the fir workload only (got %q)", workload)
	}
	if faults != "" {
		return nil, fmt.Errorf("-checkpoint-out/-restore cannot be combined with -faults")
	}
	env := &checkpoint.Env{
		OnReject: func(reason string) {
			fmt.Fprintf(os.Stderr, "uvmsim: checkpoint %s rejected (%s); restarting from zero\n", restore, reason)
		},
	}
	if out != "" {
		env.Every = 1
		env.Save = func(blob []byte) error { return checkpoint.WriteFile(out, blob) }
	}
	if restore != "" {
		blob, err := checkpoint.ReadFile(restore)
		if err != nil {
			return nil, fmt.Errorf("read checkpoint: %w", err)
		}
		env.Restore = blob
	}
	return env, nil
}

func parseSystem(s string) (workloads.System, error) {
	for _, sys := range []workloads.System{
		workloads.UVMOpt, workloads.UvmDiscard, workloads.UvmDiscardLazy,
		workloads.NoUVM, workloads.PyTorchLMS,
	} {
		if strings.EqualFold(sys.String(), s) {
			return sys, nil
		}
	}
	return 0, fmt.Errorf("unknown system %q", s)
}

func parseModel(s string) (*dnn.ModelSpec, error) {
	switch strings.ToLower(s) {
	case "vgg16", "vgg-16":
		return dnn.VGG16(), nil
	case "darknet19", "darknet-19":
		return dnn.Darknet19(), nil
	case "resnet53", "resnet-53":
		return dnn.ResNet53(), nil
	case "rnn":
		return dnn.RNN(), nil
	}
	return nil, fmt.Errorf("unknown model %q", s)
}

func report(r workloads.Result, err error) {
	if err != nil {
		fail(err)
	}
	if *jsonOut {
		emitJSON(map[string]any{
			"system":      r.System.String(),
			"runtimeNs":   int64(r.Runtime),
			"trafficGB":   gb(r.TrafficBytes),
			"h2dGB":       gb(r.H2DBytes),
			"d2hGB":       gb(r.D2HBytes),
			"savedH2DGB":  gb(r.SavedH2D),
			"savedD2HGB":  gb(r.SavedD2H),
			"faultH2DGB":  gb(r.FaultH2D),
			"evictD2HGB":  gb(r.EvictD2H),
			"remoteH2DGB": gb(r.RemoteH2D),
			"resilience": map[string]any{
				"migrateRetries": r.MigrateRetries,
				"unmapRetries":   r.UnmapRetries,
				"faultReplays":   r.FaultReplays,
				"degradedXfers":  r.DegradedXfers,
				"poisonedChunks": r.PoisonedChunks,
			},
		})
		return
	}
	fmt.Printf("system:    %v\n", r.System)
	fmt.Printf("runtime:   %v\n", r.Runtime)
	fmt.Printf("traffic:   %.2f GB (H2D %.2f, D2H %.2f)\n",
		gb(r.TrafficBytes), gb(r.H2DBytes), gb(r.D2HBytes))
	fmt.Printf("breakdown: fault H2D %.2f, prefetch H2D %.2f, eviction D2H %.2f, migration D2H %.2f\n",
		gb(r.FaultH2D), gb(r.PrefetchH2D), gb(r.EvictD2H), gb(r.MigrateD2H))
	fmt.Printf("saved by discard: H2D %.2f GB, D2H %.2f GB\n", gb(r.SavedH2D), gb(r.SavedD2H))
	if r.MigrateRetries+r.UnmapRetries+r.FaultReplays+r.DegradedXfers+r.PoisonedChunks != 0 {
		fmt.Printf("resilience: %d migrate retries, %d unmap reissues, %d fault replays, %d degraded, %d poisoned chunks\n",
			r.MigrateRetries, r.UnmapRetries, r.FaultReplays, r.DegradedXfers, r.PoisonedChunks)
	}
}

func reportTrain(r dnn.TrainResult, err error) {
	if err != nil {
		fail(err)
	}
	if *jsonOut {
		emitJSON(map[string]any{
			"system":      r.System.String(),
			"runtimeNs":   int64(r.Runtime),
			"trafficGB":   gb(r.TrafficBytes),
			"footprintGB": gb(uint64(r.Footprint)),
			"throughput":  r.Throughput,
		})
		return
	}
	report(r.Result, nil)
	fmt.Printf("footprint: %.2f GB\n", gb(uint64(r.Footprint)))
	fmt.Printf("throughput: %.1f img/s\n", r.Throughput)
}

func emitJSON(v map[string]any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fail(err)
	}
}

func gb(n uint64) float64 { return float64(n) / 1e9 }

// writeMemProfile snapshots the heap after a final GC so the profile shows
// live retention, not transient garbage.
func writeMemProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "uvmsim: %v\n", err)
	os.Exit(1)
}

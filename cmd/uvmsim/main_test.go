package main

import "testing"

func TestParseSystem(t *testing.T) {
	for _, name := range []string{"UVM-opt", "uvm-opt", "UvmDiscard", "uvmdiscardlazy",
		"No-UVM", "PyTorch-LMS"} {
		if _, err := parseSystem(name); err != nil {
			t.Errorf("parseSystem(%q): %v", name, err)
		}
	}
	if _, err := parseSystem("bogus"); err == nil {
		t.Error("bogus system accepted")
	}
}

func TestParseModel(t *testing.T) {
	for _, name := range []string{"vgg16", "VGG-16", "darknet19", "resnet53", "RNN"} {
		m, err := parseModel(name)
		if err != nil {
			t.Errorf("parseModel(%q): %v", name, err)
			continue
		}
		if err := m.Validate(); err != nil {
			t.Errorf("parseModel(%q) invalid: %v", name, err)
		}
	}
	if _, err := parseModel("gpt"); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestGB(t *testing.T) {
	if gb(2_500_000_000) != 2.5 {
		t.Errorf("gb = %v", gb(2_500_000_000))
	}
}

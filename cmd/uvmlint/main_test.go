package main

import "testing"

// TestRepoIsLintClean runs the full multichecker over the repository
// itself: the codebase must satisfy its own analyzers (any sanctioned
// wall-clock use carries an //uvmlint:ignore with a reason).
func TestRepoIsLintClean(t *testing.T) {
	diags, err := Lint(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Fatalf("uvmlint found %d finding(s) in the repository", len(diags))
	}
}

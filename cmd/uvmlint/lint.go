package main

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"

	"uvmdiscard/internal/analysis"
)

// Lint locates the module root at or above start, loads every package in
// the module, and runs the multichecker's analyzers over them. It is split
// from main so the test suite can lint the real repository in-process.
func Lint(start string) ([]analysis.Diagnostic, error) {
	root, err := moduleRoot(start)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	pkgs, err := analysis.LoadTree(fset, root, nil)
	if err != nil {
		return nil, err
	}
	return analysis.Run(pkgs, analyzers)
}

// moduleRoot walks up from dir until it finds go.mod.
func moduleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("no go.mod at or above %s", dir)
		}
		abs = parent
	}
}

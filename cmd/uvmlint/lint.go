package main

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"strings"

	"uvmdiscard/internal/analysis"
)

// Lint locates the module root at or above start, loads every package in
// the module type-checked, and runs the multichecker's analyzers over
// them. File positions are rewritten relative to the module root so every
// output format — and in particular the committed JSON baseline — is
// stable across machines. It is split from main so the test suite can
// lint the real repository in-process.
func Lint(start string) ([]analysis.Diagnostic, error) {
	root, err := analysis.ModuleRoot(start)
	if err != nil {
		return nil, err
	}
	pkgs, err := analysis.LoadRepo(start)
	if err != nil {
		return nil, err
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		return nil, err
	}
	for i := range diags {
		if rel, err := filepath.Rel(root, diags[i].Position.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].Position.Filename = filepath.ToSlash(rel)
		}
	}
	return diags, nil
}

// jsonDiagnostic is the stable wire form of one finding for -format=json:
// machine consumers (the CI baseline gate, editor integrations) key on
// these field names, so they are part of uvmlint's interface.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// writeJSON renders the findings as a JSON array (never null: an empty run
// encodes as []), one object per finding, indented for direct use as a
// committed baseline file.
func writeJSON(w io.Writer, diags []analysis.Diagnostic) error {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiagnostic{
			File:     d.Position.Filename,
			Line:     d.Position.Line,
			Column:   d.Position.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// writeGitHub renders the findings as GitHub Actions workflow commands so
// CI runs annotate the offending lines in the pull-request diff view.
func writeGitHub(w io.Writer, diags []analysis.Diagnostic) error {
	for _, d := range diags {
		msg := fmt.Sprintf("[%s] %s", d.Analyzer, d.Message)
		// Workflow-command data is %-escaped per the Actions spec; a raw
		// newline or % would otherwise terminate or corrupt the command.
		r := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A")
		_, err := fmt.Fprintf(w, "::error file=%s,line=%d,col=%d::%s\n",
			d.Position.Filename, d.Position.Line, d.Position.Column, r.Replace(msg))
		if err != nil {
			return err
		}
	}
	return nil
}

// writeText renders the findings in the canonical file:line:col form.
func writeText(w io.Writer, diags []analysis.Diagnostic) error {
	for _, d := range diags {
		if _, err := fmt.Fprintln(w, d); err != nil {
			return err
		}
	}
	return nil
}

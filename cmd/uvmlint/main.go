// Command uvmlint is the project's multichecker: it runs the custom
// static-analysis passes (locksafe, simdet, queuestate — see
// internal/analysis) over every package in the module and exits non-zero
// if any diagnostic survives suppression.
//
// Usage:
//
//	uvmlint [-list] [dir]
//
// dir defaults to the current directory; the module root is located by
// walking up to go.mod, and the whole module is linted regardless of which
// subdirectory uvmlint starts from (so `go run ./cmd/uvmlint` in the repo
// root and a `make lint` from anywhere agree). Suppress a finding with
// `//uvmlint:ignore <analyzer> <reason>` on or directly above the line.
package main

import (
	"flag"
	"fmt"
	"os"

	"uvmdiscard/internal/analysis"
	"uvmdiscard/internal/analysis/locksafe"
	"uvmdiscard/internal/analysis/queuestate"
	"uvmdiscard/internal/analysis/simdet"
)

// analyzers is the multichecker's pass list.
var analyzers = []*analysis.Analyzer{
	locksafe.Analyzer,
	simdet.Analyzer,
	queuestate.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: uvmlint [-list] [dir]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	start := "."
	if flag.NArg() > 0 {
		start = flag.Arg(0)
	}
	diags, err := Lint(start)
	if err != nil {
		fmt.Fprintln(os.Stderr, "uvmlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "uvmlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

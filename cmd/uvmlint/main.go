// Command uvmlint is the project's multichecker: it type-checks every
// package in the module and runs the custom static-analysis passes
// (locksafe, simdet, queuestate, errsink, goroleak, lockorder,
// discardproto — see internal/analysis) over them, exiting non-zero if
// any diagnostic survives suppression.
//
// Usage:
//
//	uvmlint [-list] [-format=text|json|github] [dir]
//	uvmlint -expfmt [file]
//
// dir defaults to the current directory; the module root is located by
// walking up to go.mod, and the whole module is linted regardless of which
// subdirectory uvmlint starts from (so `go run ./cmd/uvmlint` in the repo
// root and a `make lint` from anywhere agree). Suppress a finding with
// `//uvmlint:ignore <analyzers> -- <justification>` on or directly above
// the line; the justification is mandatory and unused suppressions are
// themselves findings.
//
// -format selects the output encoding: "text" (default) prints the
// canonical file:line:col lines, "json" emits a machine-readable array of
// {file,line,column,analyzer,message} objects (the CI baseline gate diffs
// this against lint.baseline.json), and "github" emits GitHub Actions
// ::error workflow commands so CI annotates the offending lines in the
// pull-request diff.
//
// -expfmt switches uvmlint into Prometheus exposition-format checking
// (internal/promexp.Check): it validates a scrape read from the named file
// (or stdin when omitted or "-") and exits non-zero on any violation. CI
// uses it to prove uvmsimd's GET /metrics output parses.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"uvmdiscard/internal/analysis"
	"uvmdiscard/internal/analysis/discardproto"
	"uvmdiscard/internal/analysis/errsink"
	"uvmdiscard/internal/analysis/goroleak"
	"uvmdiscard/internal/analysis/lockorder"
	"uvmdiscard/internal/analysis/locksafe"
	"uvmdiscard/internal/analysis/queuestate"
	"uvmdiscard/internal/analysis/simdet"
	"uvmdiscard/internal/promexp"
)

// analyzers is the multichecker's pass list.
var analyzers = []*analysis.Analyzer{
	locksafe.Analyzer,
	simdet.Analyzer,
	queuestate.Analyzer,
	errsink.Analyzer,
	goroleak.Analyzer,
	lockorder.Analyzer,
	discardproto.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	format := flag.String("format", "text", "output format: text, json, or github")
	expfmt := flag.Bool("expfmt", false, "validate a Prometheus text exposition (file arg or stdin) instead of linting Go code")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: uvmlint [-list] [-format=text|json|github] [dir]\n       uvmlint -expfmt [file]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *expfmt {
		os.Exit(checkExposition(flag.Args()))
	}
	var write func(io.Writer, []analysis.Diagnostic) error
	switch *format {
	case "text":
		write = writeText
	case "json":
		write = writeJSON
	case "github":
		write = writeGitHub
	default:
		fmt.Fprintf(os.Stderr, "uvmlint: unknown -format %q (want text, json, or github)\n", *format)
		os.Exit(2)
	}
	start := "."
	if flag.NArg() > 0 {
		start = flag.Arg(0)
	}
	diags, err := Lint(start)
	if err != nil {
		fmt.Fprintln(os.Stderr, "uvmlint:", err)
		os.Exit(2)
	}
	if err := write(os.Stdout, diags); err != nil {
		fmt.Fprintln(os.Stderr, "uvmlint:", err)
		os.Exit(2)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "uvmlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// checkExposition runs the promexp validator over a scrape and returns the
// process exit code: 0 clean, 1 violations, 2 I/O error.
func checkExposition(args []string) int {
	var r io.Reader = os.Stdin
	name := "<stdin>"
	if len(args) > 0 && args[0] != "-" {
		f, err := os.Open(args[0])
		if err != nil {
			fmt.Fprintln(os.Stderr, "uvmlint:", err)
			return 2
		}
		defer f.Close()
		r, name = f, args[0]
	}
	problems := promexp.Check(r)
	for _, p := range problems {
		fmt.Printf("%s: %s\n", name, p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "uvmlint: %d exposition violation(s)\n", len(problems))
		return 1
	}
	return 0
}

package main

import (
	"bytes"
	"flag"
	"go/token"
	"os"
	"path/filepath"
	"testing"

	"uvmdiscard/internal/analysis"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden files under testdata/")

// fixedDiags is a frozen finding set covering the encoder edge cases: an
// ordinary finding, a message with JSON- and workflow-command-hostile
// characters (quotes, %, newline), and the zero column the typecheck
// pseudo-analyzer can produce.
var fixedDiags = []analysis.Diagnostic{
	{
		Analyzer: "simdet",
		Position: token.Position{Filename: "internal/sim/clock.go", Line: 42, Column: 7},
		Message:  "time.Now reads the wall clock: simulation code must derive time from sim.Time",
	},
	{
		Analyzer: "discardproto",
		Position: token.Position{Filename: "internal/workloads/fir.go", Line: 9, Column: 13},
		Message:  "b is read after being discarded — 100% dead\nsecond line with \"quotes\"",
	},
	{
		Analyzer: "typecheck",
		Position: token.Position{Filename: "cmd/broken/main.go", Line: 3},
		Message:  "undefined: frobnicate",
	},
}

// golden renders diags with write and compares the bytes against the named
// golden file; -update rewrites it.
func golden(t *testing.T, name string, write func(*bytes.Buffer) error) {
	t.Helper()
	var buf bytes.Buffer
	if err := write(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run go test ./cmd/uvmlint -update to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("%s output drifted from %s:\ngot:\n%swant:\n%s", name, path, buf.Bytes(), want)
	}
}

// TestJSONGolden pins the -format=json encoding byte for byte: the CI
// baseline gate diffs this output against a committed file, so any change
// here is a breaking change for machine consumers and must be deliberate.
func TestJSONGolden(t *testing.T) {
	golden(t, "format.json", func(buf *bytes.Buffer) error {
		return writeJSON(buf, fixedDiags)
	})
}

// TestJSONEmpty pins the no-findings encoding — the content of the
// committed lint.baseline.json — to an empty array, never null.
func TestJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := writeJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "[]\n" {
		t.Errorf("empty findings encode as %q, want %q", got, "[]\n")
	}
	baseline, err := os.ReadFile(filepath.Join("..", "..", "lint.baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(baseline, buf.Bytes()) {
		t.Errorf("lint.baseline.json is %q; the committed baseline must be the empty finding set %q",
			baseline, buf.String())
	}
}

// TestGitHubGolden pins the ::error workflow-command encoding, including
// the %-escaping of newlines required by the Actions spec.
func TestGitHubGolden(t *testing.T) {
	golden(t, "format.github.txt", func(buf *bytes.Buffer) error {
		return writeGitHub(buf, fixedDiags)
	})
}

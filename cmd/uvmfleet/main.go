// Command uvmfleet fronts the fleet coordinator (internal/fleet): a durable
// job queue handing work to a crash-prone pool of uvmsimd -worker processes
// under time-bounded leases (DESIGN.md §14). The journal makes the queue
// survive kill -9: restart uvmfleet on the same journal and every
// unfinished job is still there, with attempt numbers intact.
//
// Endpoints:
//
//	POST /v1/jobs              {"tenant":"t1","experiment":"T3","quick":true}
//	GET  /v1/jobs/{id}         job status, output when finished
//	GET  /v1/fleet             workers, tenants, job counts, protocol counters
//	GET  /metrics              Prometheus text exposition (uvmfleet_* families)
//	GET  /healthz              ok
//	POST /v1/workers/register, /v1/workers/heartbeat,
//	     /v1/lease, /v1/lease/renew, /v1/complete   (worker protocol)
//
// Quickstart (three workers, one coordinator):
//
//	uvmfleet -addr 127.0.0.1:8078 -journal fleet.journal &
//	for i in 1 2 3; do uvmsimd -worker -coordinator=http://127.0.0.1:8078 -worker-name w$i & done
//	curl -s -XPOST localhost:8078/v1/jobs -d '{"tenant":"me","experiment":"T3","quick":true}'
//
// Kill a worker mid-job; the lease expires and the job finishes on another
// worker with byte-identical output.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"uvmdiscard/internal/fleet"
	"uvmdiscard/internal/service"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8078", "listen address (use :0 for an ephemeral port)")
		journal     = flag.String("journal", "", "crash-safe coordinator journal path (empty = in-memory, nothing survives restart)")
		leaseTTL    = flag.Duration("lease-ttl", 15*time.Second, "lease lifetime without renewal")
		hbTimeout   = flag.Duration("heartbeat-timeout", 0, "silence after which a worker is declared dead (0 = 3x lease-ttl)")
		maxAttempts = flag.Int("max-attempts", 5, "lease attempts per job before it fails permanently")
		backoff     = flag.Duration("retry-backoff", 250*time.Millisecond, "base requeue backoff (doubles per attempt)")
		quota       = flag.Int("tenant-quota", 64, "max queued+leased jobs per tenant")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "uvmfleet: ", log.LstdFlags)
	coord, err := fleet.New(fleet.Config{
		JournalPath:      *journal,
		LeaseTTL:         *leaseTTL,
		HeartbeatTimeout: *hbTimeout,
		MaxAttempts:      *maxAttempts,
		RetryBackoff:     *backoff,
		TenantQuota:      *quota,
		Log:              logger,
	})
	if err != nil {
		logger.Fatalf("coordinator: %v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatalf("listen: %v", err)
	}
	// The smoke harness parses this line to discover an ephemeral port.
	fmt.Printf("uvmfleet listening on %s\n", ln.Addr())
	//uvmlint:ignore errsink -- stdout may be a pipe where fsync is unsupported; the line above is what matters
	os.Stdout.Sync()
	logger.Printf("fleet: %s", coord.State())

	hs := service.NewHTTPServer(coord.Handler())
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		logger.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}
	logger.Printf("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = hs.Shutdown(shutCtx)
	if err := coord.Close(); err != nil {
		logger.Printf("close: %v", err)
	}
	logger.Printf("bye")
}

package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"uvmdiscard/internal/experiments"
	"uvmdiscard/internal/promexp"
)

// TestSmokeFleet is the fleet's end-to-end acceptance smoke against the real
// binaries: one uvmfleet coordinator, two uvmsimd -worker processes, a batch
// of jobs across two tenants — then SIGKILL one worker mid-run. Every job
// must still complete, byte-identical to an in-process run, the killed
// worker must be detected dead, and GET /metrics must serve a valid
// Prometheus exposition carrying the fleet families.

// smokeJobs is the job mix: cheap quick-mode experiments, repeated into a
// batch deep enough that both workers cycle many leases before the queue
// drains — the window the worker kill must land in.
var smokeJobs = func() []string {
	base := []string{"T3", "T4", "T5", "T6"}
	jobs := make([]string, 0, 40)
	for len(jobs) < 40 {
		jobs = append(jobs, base...)
	}
	return jobs
}()

func buildBinary(t *testing.T, pkg string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), filepath.Base(pkg))
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

// startProc launches a binary and scans its stdout for the banner prefix,
// returning the remainder of the banner line (the listen address for the
// coordinator, the worker name for workers).
func startProc(t *testing.T, banner string, bin string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
	})
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), banner); ok {
			go func() { // keep draining stdout so the child never blocks
				for sc.Scan() {
				}
			}()
			return cmd, strings.TrimSpace(rest)
		}
	}
	t.Fatalf("%s exited before printing %q (scan err: %v)", bin, banner, sc.Err())
	return nil, ""
}

type fleetJob struct {
	ID      string `json:"id"`
	State   string `json:"state"`
	Attempt int    `json:"attempt"`
	Worker  string `json:"worker"`
	Output  string `json:"output"`
	LastErr string `json:"last_error"`
	Spec    struct {
		Experiment string `json:"experiment"`
	} `json:"spec"`
}

func submitJob(t *testing.T, base, tenant, experiment string) fleetJob {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"tenant": tenant, "experiment": experiment, "quick": true})
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var js fleetJob
	if err := json.NewDecoder(resp.Body).Decode(&js); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit %s: %d (%+v)", experiment, resp.StatusCode, js)
	}
	return js
}

func getJob(t *testing.T, base, id string) fleetJob {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var js fleetJob
	if err := json.NewDecoder(resp.Body).Decode(&js); err != nil {
		t.Fatal(err)
	}
	return js
}

// workerActive reads a worker's active lease count from GET /v1/fleet.
func workerActive(t *testing.T, base, name string) int {
	t.Helper()
	resp, err := http.Get(base + "/v1/fleet")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Workers []struct {
			Name   string `json:"name"`
			Active int    `json:"active_leases"`
		} `json:"workers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	for _, w := range st.Workers {
		if w.Name == name {
			return w.Active
		}
	}
	return 0
}

// smokeReference renders the ground truth each experiment's fleet output
// must match byte for byte.
func smokeReference(t *testing.T) map[string]string {
	t.Helper()
	var sel []experiments.Experiment
	seen := map[string]bool{}
	for _, id := range smokeJobs {
		if seen[id] {
			continue
		}
		seen[id] = true
		e, ok := experiments.Lookup(id)
		if !ok {
			t.Fatalf("unknown experiment %q", id)
		}
		sel = append(sel, e)
	}
	ref := make(map[string]string)
	for _, r := range experiments.RunAll(nil, sel, experiments.Options{Quick: true}, 2, nil) {
		if r.Err != nil {
			t.Fatalf("reference run %s: %v", r.Experiment.ID, r.Err)
		}
		ref[r.Experiment.ID] = r.Table.String()
	}
	return ref
}

func TestSmokeFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	fleetBin := buildBinary(t, "uvmdiscard/cmd/uvmfleet")
	simdBin := buildBinary(t, "uvmdiscard/cmd/uvmsimd")
	ref := smokeReference(t)

	journal := filepath.Join(t.TempDir(), "fleet.journal")
	_, addr := startProc(t, "uvmfleet listening on ", fleetBin,
		"-addr", "127.0.0.1:0",
		"-journal", journal,
		"-lease-ttl", "1s",
		"-retry-backoff", "50ms",
		"-max-attempts", "10",
	)
	base := "http://" + addr

	startWorker := func(name string) *exec.Cmd {
		cmd, got := startProc(t, "uvmsimd worker ", simdBin,
			"-worker",
			"-coordinator", base,
			"-worker-name", name,
			"-capacity", "1",
		)
		if !strings.HasPrefix(got, name+" ") {
			t.Fatalf("worker banner %q does not carry name %s", got, name)
		}
		return cmd
	}
	startWorker("smoke-w1")
	w2 := startWorker("smoke-w2")

	ids := make([]string, 0, len(smokeJobs))
	tenants := []string{"alpha", "beta"}
	for i, exp := range smokeJobs {
		js := submitJob(t, base, tenants[i%len(tenants)], exp)
		ids = append(ids, js.ID)
	}

	// SIGKILL one worker the moment it is observed holding a lease, so the
	// kill strands in-flight work: the lease must expire and the job must
	// finish on the survivor.
	leaseSeen := false
	for end := time.Now().Add(10 * time.Second); time.Now().Before(end); time.Sleep(5 * time.Millisecond) {
		if workerActive(t, base, "smoke-w2") > 0 {
			leaseSeen = true
			break
		}
	}
	if err := w2.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_, _ = w2.Process.Wait()
	t.Logf("killed smoke-w2 (holding a lease: %v)", leaseSeen)
	if !leaseSeen {
		t.Errorf("smoke-w2 never held a lease before the batch drained; kill landed on an idle worker")
	}

	deadline := time.Now().Add(3 * time.Minute)
	pending := append([]string(nil), ids...)
	for len(pending) > 0 {
		if time.Now().After(deadline) {
			for _, id := range pending {
				t.Errorf("job %s never completed: %+v", id, getJob(t, base, id))
			}
			t.Fatalf("timed out waiting for %d of %d jobs", len(pending), len(ids))
		}
		time.Sleep(50 * time.Millisecond)
		remaining := pending[:0]
		for _, id := range pending {
			js := getJob(t, base, id)
			switch js.State {
			case "done":
			case "failed":
				t.Fatalf("job %s failed permanently: %s", id, js.LastErr)
			default:
				remaining = append(remaining, id)
			}
		}
		pending = remaining
	}

	// Every result must match the in-process reference byte for byte. Jobs
	// the killed worker finished before the SIGKILL are legitimately its;
	// the survivor must have carried the rest.
	survivorJobs := 0
	for _, id := range ids {
		js := getJob(t, base, id)
		if want := ref[js.Spec.Experiment]; js.Output != want {
			t.Errorf("job %s (%s): output diverged from in-process run\ngot:\n%s\nwant:\n%s",
				id, js.Spec.Experiment, js.Output, want)
		}
		if js.Worker == "smoke-w1" {
			survivorJobs++
		}
	}
	if survivorJobs == 0 {
		t.Errorf("surviving worker completed no jobs; the pool did not share the batch")
	}

	// The killed worker must be reported dead once its heartbeats lapse
	// (heartbeat timeout defaults to 3×TTL = 3s here).
	dead := false
	for end := time.Now().Add(15 * time.Second); time.Now().Before(end); time.Sleep(200 * time.Millisecond) {
		resp, err := http.Get(base + "/v1/fleet")
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			Workers []struct {
				Name string `json:"name"`
				Live bool   `json:"live"`
			} `json:"workers"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range st.Workers {
			if w.Name == "smoke-w2" && !w.Live {
				dead = true
			}
		}
		if dead {
			break
		}
	}
	if !dead {
		t.Errorf("killed worker smoke-w2 never marked dead in /v1/fleet")
	}

	// The exposition must validate (the same checker `uvmlint -expfmt`
	// applies in CI) and carry the fleet families.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	scrape, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if problems := promexp.CheckText(scrape); len(problems) != 0 {
		t.Errorf("GET /metrics fails the exposition checker:\n%s", strings.Join(problems, "\n"))
	}
	for _, family := range []string{
		"uvmfleet_workers",
		"uvmfleet_jobs",
		"uvmfleet_jobs_submitted_total",
		"uvmfleet_leases_granted_total",
		"uvmfleet_requeues_total",
		"uvmfleet_completion_reports_total",
		"uvmfleet_workers_died_total",
	} {
		if !bytes.Contains(scrape, []byte(family)) {
			t.Errorf("scrape missing fleet family %s", family)
		}
	}
	if !bytes.Contains(scrape, []byte(`verdict="recorded"`)) {
		t.Errorf("scrape missing completion verdict label")
	}
	if fams := fmt.Sprintf("%s", scrape); !strings.Contains(fams, `state="dead"`) {
		t.Errorf("scrape does not report the dead worker")
	}
}

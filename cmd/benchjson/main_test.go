package main

import (
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: uvmdiscard
cpu: Some CPU @ 2.80GHz
BenchmarkTable3_FIRRuntime-8   	       1	 234150010 ns/op	        0.52 paper-x	    1234 B/op	      56 allocs/op
BenchmarkTable4_FIRTraffic     	       2	  11000000 ns/op
PASS
ok  	uvmdiscard	1.234s
`
	base, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if base.Goos != "linux" || base.Goarch != "amd64" || base.Pkg != "uvmdiscard" {
		t.Errorf("header not captured: %+v", base)
	}
	if len(base.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(base.Benchmarks))
	}
	b := base.Benchmarks[0]
	if b.Name != "BenchmarkTable3_FIRRuntime" || b.Procs != 8 || b.Iterations != 1 {
		t.Errorf("first benchmark: %+v", b)
	}
	for unit, want := range map[string]float64{
		"ns/op": 234150010, "paper-x": 0.52, "B/op": 1234, "allocs/op": 56,
	} {
		if got := b.Metrics[unit]; got != want {
			t.Errorf("%s = %v, want %v", unit, got, want)
		}
	}
	if !strings.Contains(b.Raw, "BenchmarkTable3_FIRRuntime-8") {
		t.Errorf("raw line not preserved: %q", b.Raw)
	}
	// No -procs suffix parses with Procs 1.
	if b2 := base.Benchmarks[1]; b2.Procs != 1 || b2.Iterations != 2 {
		t.Errorf("second benchmark: %+v", b2)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, line := range []string{
		"BenchmarkOnly",
		"BenchmarkX notanumber",
		"BenchmarkX 3 zap ns/op",
		"FAIL	uvmdiscard	0.1s",
	} {
		if b, ok := parseLine(line); ok {
			t.Errorf("%q parsed as %+v", line, b)
		}
	}
}

// bl builds a baseline from (name, ns, allocs) triples.
func bl(entries ...[3]interface{}) Baseline {
	var b Baseline
	for _, e := range entries {
		b.Benchmarks = append(b.Benchmarks, Benchmark{
			Name: e[0].(string),
			Metrics: map[string]float64{
				"ns/op":     e[1].(float64),
				"allocs/op": e[2].(float64),
			},
		})
	}
	return b
}

func TestCheckPassesWithinThreshold(t *testing.T) {
	base := bl([3]interface{}{"BenchmarkA", 2000000.0, 100.0})
	cur := bl([3]interface{}{"BenchmarkA", 2198000.0, 100.0})
	if f := Check(base, cur, 1.10, 1.10); len(f) != 0 {
		t.Errorf("unexpected failures: %v", f)
	}
}

func TestCheckFailsOnRegression(t *testing.T) {
	base := bl([3]interface{}{"BenchmarkA", 2000000.0, 100.0})
	for _, cur := range []Baseline{
		bl([3]interface{}{"BenchmarkA", 2402000.0, 100.0}), // ns/op blown
		bl([3]interface{}{"BenchmarkA", 2000000.0, 121.0}), // allocs/op blown
	} {
		if f := Check(base, cur, 1.10, 1.10); len(f) != 1 {
			t.Errorf("want 1 failure, got %v", f)
		}
	}
}

func TestCheckUsesMinAcrossCount(t *testing.T) {
	// -count=3 emits one line per run; a single noisy outlier must not
	// fail the gate as long as one run demonstrates baseline speed.
	base := bl([3]interface{}{"BenchmarkA", 2000000.0, 100.0})
	cur := bl(
		[3]interface{}{"BenchmarkA", 5000000.0, 100.0},
		[3]interface{}{"BenchmarkA", 1980000.0, 100.0},
		[3]interface{}{"BenchmarkA", 3600000.0, 100.0},
	)
	if f := Check(base, cur, 1.10, 1.10); len(f) != 0 {
		t.Errorf("unexpected failures: %v", f)
	}
}

func TestCheckFailsOnMissingBenchmark(t *testing.T) {
	base := bl(
		[3]interface{}{"BenchmarkA", 2000000.0, 100.0},
		[3]interface{}{"BenchmarkB", 2000000.0, 100.0},
	)
	cur := bl([3]interface{}{"BenchmarkA", 2000000.0, 100.0})
	f := Check(base, cur, 1.10, 1.10)
	if len(f) != 1 || !strings.Contains(f[0], "BenchmarkB") {
		t.Errorf("want missing-BenchmarkB failure, got %v", f)
	}
}

func TestCheckIgnoresNewBenchmarks(t *testing.T) {
	base := bl([3]interface{}{"BenchmarkA", 2000000.0, 100.0})
	cur := bl(
		[3]interface{}{"BenchmarkA", 2000000.0, 100.0},
		[3]interface{}{"BenchmarkNew", 9999000.0, 999.0},
	)
	if f := Check(base, cur, 1.10, 1.10); len(f) != 0 {
		t.Errorf("unexpected failures: %v", f)
	}
}

func TestCheckNsFloorExemptsTinyBenchmarks(t *testing.T) {
	// A 67µs benchmark tripling its cold wall time is jitter, not a
	// regression — but its alloc count regressing still fails.
	base := bl([3]interface{}{"BenchmarkTiny", 67000.0, 100.0})
	if f := Check(base, bl([3]interface{}{"BenchmarkTiny", 201000.0, 100.0}), 1.10, 1.10); len(f) != 0 {
		t.Errorf("sub-ms ns/op jitter failed the gate: %v", f)
	}
	if f := Check(base, bl([3]interface{}{"BenchmarkTiny", 67000.0, 150.0}), 1.10, 1.10); len(f) != 1 {
		t.Errorf("sub-ms alloc regression escaped the gate: %v", f)
	}
}

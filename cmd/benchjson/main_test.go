package main

import (
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: uvmdiscard
cpu: Some CPU @ 2.80GHz
BenchmarkTable3_FIRRuntime-8   	       1	 234150010 ns/op	        0.52 paper-x	    1234 B/op	      56 allocs/op
BenchmarkTable4_FIRTraffic     	       2	  11000000 ns/op
PASS
ok  	uvmdiscard	1.234s
`
	base, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if base.Goos != "linux" || base.Goarch != "amd64" || base.Pkg != "uvmdiscard" {
		t.Errorf("header not captured: %+v", base)
	}
	if len(base.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(base.Benchmarks))
	}
	b := base.Benchmarks[0]
	if b.Name != "BenchmarkTable3_FIRRuntime" || b.Procs != 8 || b.Iterations != 1 {
		t.Errorf("first benchmark: %+v", b)
	}
	for unit, want := range map[string]float64{
		"ns/op": 234150010, "paper-x": 0.52, "B/op": 1234, "allocs/op": 56,
	} {
		if got := b.Metrics[unit]; got != want {
			t.Errorf("%s = %v, want %v", unit, got, want)
		}
	}
	if !strings.Contains(b.Raw, "BenchmarkTable3_FIRRuntime-8") {
		t.Errorf("raw line not preserved: %q", b.Raw)
	}
	// No -procs suffix parses with Procs 1.
	if b2 := base.Benchmarks[1]; b2.Procs != 1 || b2.Iterations != 2 {
		t.Errorf("second benchmark: %+v", b2)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, line := range []string{
		"BenchmarkOnly",
		"BenchmarkX notanumber",
		"BenchmarkX 3 zap ns/op",
		"FAIL	uvmdiscard	0.1s",
	} {
		if b, ok := parseLine(line); ok {
			t.Errorf("%q parsed as %+v", line, b)
		}
	}
}

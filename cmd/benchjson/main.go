// Command benchjson converts `go test -bench` text output into a stable
// JSON baseline. `make bench-json` pipes the quick-mode paper benchmarks
// through it to produce BENCH_PR6.json, the committed performance baseline
// future PRs diff against.
//
// Usage:
//
//	go test -bench=. -benchmem -benchtime=1x . | benchjson -out BENCH_PR6.json
//
// Every benchmark result line is parsed into {name, procs, iterations,
// metrics} with all value/unit pairs preserved (ns/op, B/op, allocs/op, and
// the custom paper metrics like traffic-gb). The verbatim line is kept in
// "raw", so a benchstat-ready file is one jq away:
//
//	jq -r '.benchmarks[].raw' BENCH_PR6.json | benchstat old.txt -
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark function name without the -procs suffix.
	Name string `json:"name"`
	// Procs is GOMAXPROCS at run time (the -N name suffix).
	Procs int `json:"procs"`
	// Iterations is b.N.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value for every reported pair (ns/op, B/op,
	// allocs/op, custom b.ReportMetric units).
	Metrics map[string]float64 `json:"metrics"`
	// Raw is the verbatim output line, for benchstat reconstruction.
	Raw string `json:"raw"`
}

// Baseline is the emitted document.
type Baseline struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// parseLine parses one "BenchmarkX-8 N value unit ..." line; ok is false
// for non-benchmark lines.
func parseLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 2 || !strings.HasPrefix(f[0], "Benchmark") {
		return Benchmark{}, false
	}
	b := Benchmark{Name: f[0], Procs: 1, Metrics: map[string]float64{}, Raw: line}
	if i := strings.LastIndexByte(f[0], '-'); i > 0 {
		if p, err := strconv.Atoi(f[0][i+1:]); err == nil {
			b.Name, b.Procs = f[0][:i], p
		}
	}
	n, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = n
	// The rest are value/unit pairs.
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[f[i+1]] = v
	}
	return b, true
}

// Parse reads `go test -bench` output and assembles the baseline.
func Parse(r io.Reader) (Baseline, error) {
	var out Baseline
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			out.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			out.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			out.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			out.CPU = strings.TrimPrefix(line, "cpu: ")
		default:
			if b, ok := parseLine(line); ok {
				out.Benchmarks = append(out.Benchmarks, b)
			}
		}
	}
	return out, sc.Err()
}

func main() {
	outPath := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	base, err := Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	if len(base.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	data = append(data, '\n')
	if *outPath == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*outPath, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(base.Benchmarks), *outPath)
}

// Command benchjson converts `go test -bench` text output into a stable
// JSON baseline, and gates new runs against a committed one. `make
// bench-json` pipes the quick-mode paper benchmarks through it to produce
// BENCH_PR<n>.json, the committed performance baseline future PRs diff
// against; `make bench-check` replays the benchmarks and fails if any
// regressed past a threshold.
//
// Usage:
//
//	go test -bench=. -benchmem -benchtime=1x . | benchjson -out BENCH_PR9.json
//	go test -bench=. -benchmem -benchtime=1x -count=3 . \
//	    | benchjson -check BENCH_PR9.json -threshold 1.10
//
// Every benchmark result line is parsed into {name, procs, iterations,
// metrics} with all value/unit pairs preserved (ns/op, B/op, allocs/op, and
// the custom paper metrics like traffic-gb). The verbatim line is kept in
// "raw", so a benchstat-ready file is one jq away:
//
//	jq -r '.benchmarks[].raw' BENCH_PR6.json | benchstat old.txt -
//
// In -check mode, when a benchmark appears several times (-count>1) the
// minimum per metric is used on both sides: the minimum answers "can this
// code still run this fast", which is robust to scheduler noise that
// single cold iterations on shared CI machines otherwise pick up.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark function name without the -procs suffix.
	Name string `json:"name"`
	// Procs is GOMAXPROCS at run time (the -N name suffix).
	Procs int `json:"procs"`
	// Iterations is b.N.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value for every reported pair (ns/op, B/op,
	// allocs/op, custom b.ReportMetric units).
	Metrics map[string]float64 `json:"metrics"`
	// Raw is the verbatim output line, for benchstat reconstruction.
	Raw string `json:"raw"`
}

// Baseline is the emitted document.
type Baseline struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// parseLine parses one "BenchmarkX-8 N value unit ..." line; ok is false
// for non-benchmark lines.
func parseLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 2 || !strings.HasPrefix(f[0], "Benchmark") {
		return Benchmark{}, false
	}
	b := Benchmark{Name: f[0], Procs: 1, Metrics: map[string]float64{}, Raw: line}
	if i := strings.LastIndexByte(f[0], '-'); i > 0 {
		if p, err := strconv.Atoi(f[0][i+1:]); err == nil {
			b.Name, b.Procs = f[0][:i], p
		}
	}
	n, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = n
	// The rest are value/unit pairs.
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[f[i+1]] = v
	}
	return b, true
}

// Parse reads `go test -bench` output and assembles the baseline.
func Parse(r io.Reader) (Baseline, error) {
	var out Baseline
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			out.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			out.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			out.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			out.CPU = strings.TrimPrefix(line, "cpu: ")
		default:
			if b, ok := parseLine(line); ok {
				out.Benchmarks = append(out.Benchmarks, b)
			}
		}
	}
	return out, sc.Err()
}

// mins collapses a baseline to the per-benchmark minimum of each metric
// across repeated result lines (-count>1 emits one line per run).
func mins(b Baseline) map[string]map[string]float64 {
	out := make(map[string]map[string]float64, len(b.Benchmarks))
	for _, bm := range b.Benchmarks {
		m := out[bm.Name]
		if m == nil {
			m = make(map[string]float64, len(bm.Metrics))
			out[bm.Name] = m
		}
		for unit, v := range bm.Metrics {
			if old, ok := m[unit]; !ok || v < old {
				m[unit] = v
			}
		}
	}
	return out
}

// nsFloor exempts benchmarks whose baseline wall time is below 1 ms from
// the ns/op gate: a single cold sub-millisecond iteration measures the
// scheduler more than the code. Their allocs/op stays gated.
const nsFloor = 1e6

// Check compares a fresh run against a committed baseline and returns one
// human-readable failure per benchmark metric exceeding its threshold.
// ns/op and allocs/op are gated with separate thresholds: allocation
// counts are deterministic (identical across runs and machines), so
// allocThreshold can sit tight at 1.10 even where wall-clock noise forces
// nsThreshold wider. B/op and the custom paper metrics (table ratios,
// traffic) are recorded but not thresholded — the reproduction tests pin
// those. Benchmarks present in the baseline but absent from the run fail
// too — a silently vanished benchmark is a lost regression gate, not a
// win.
func Check(baseline, current Baseline, nsThreshold, allocThreshold float64) []string {
	base, cur := mins(baseline), mins(current)
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	thresholds := []struct {
		unit string
		max  float64
	}{
		{"ns/op", nsThreshold},
		{"allocs/op", allocThreshold},
	}
	var failures []string
	for _, name := range names {
		bm, cm := base[name], cur[name]
		if cm == nil {
			failures = append(failures, fmt.Sprintf("%s: missing from current run", name))
			continue
		}
		for _, th := range thresholds {
			bv, ok := bm[th.unit]
			if !ok || bv <= 0 {
				continue
			}
			if th.unit == "ns/op" && bv < nsFloor {
				// Sub-millisecond cold iterations are scheduler jitter,
				// not signal; the allocs/op gate still covers them.
				continue
			}
			cv, ok := cm[th.unit]
			if !ok {
				failures = append(failures, fmt.Sprintf("%s: %s missing from current run", name, th.unit))
				continue
			}
			if cv > bv*th.max {
				failures = append(failures, fmt.Sprintf("%s: %s regressed %.0f -> %.0f (%.2fx > %.2fx allowed)",
					name, th.unit, bv, cv, cv/bv, th.max))
			}
		}
	}
	return failures
}

func runCheck(checkPath string, nsThreshold, allocThreshold float64) {
	data, err := os.ReadFile(checkPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	var baseline Baseline
	if err := json.Unmarshal(data, &baseline); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: parsing %s: %v\n", checkPath, err)
		os.Exit(2)
	}
	current, err := Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	if len(current.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	failures := Check(baseline, current, nsThreshold, allocThreshold)
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d regression(s) vs %s (ns/op %.2fx, allocs/op %.2fx allowed):\n",
			len(failures), checkPath, nsThreshold, allocThreshold)
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "  "+f)
		}
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks within ns/op %.2fx, allocs/op %.2fx of %s\n",
		len(mins(current)), nsThreshold, allocThreshold, checkPath)
}

func main() {
	outPath := flag.String("out", "", "output file (default stdout)")
	checkPath := flag.String("check", "", "baseline JSON to gate against instead of emitting JSON")
	threshold := flag.Float64("threshold", 1.10, "allowed ns/op ratio vs the -check baseline")
	allocThreshold := flag.Float64("alloc-threshold", 1.10, "allowed allocs/op ratio vs the -check baseline")
	flag.Parse()

	if *checkPath != "" {
		runCheck(*checkPath, *threshold, *allocThreshold)
		return
	}

	base, err := Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	if len(base.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	data = append(data, '\n')
	if *outPath == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*outPath, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(base.Benchmarks), *outPath)
}

// Command paperbench regenerates every table and figure from the paper's
// evaluation and prints them with the paper's reported values alongside.
//
// Usage:
//
//	paperbench                 # run everything at full scale
//	paperbench -run T3,T4      # only the FIR tables
//	paperbench -run fir-runtime
//	paperbench -quick          # scaled-down sizes (seconds instead of minutes)
//	paperbench -j 8            # run experiments across 8 workers
//	paperbench -list           # list available experiments
//	paperbench -o results.txt  # also write the output to a file
//
// Experiments execute across -j worker goroutines (default: all CPUs), but
// tables are always emitted on stdout in deterministic artifact order, so
// the output bytes are identical whatever the parallelism. Per-experiment
// progress and wall-time lines stream to stderr as runs finish.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"uvmdiscard/internal/experiments"
)

func main() {
	var (
		run     = flag.String("run", "", "comma-separated experiment IDs or names (default: all)")
		quick   = flag.Bool("quick", false, "scaled-down problem sizes")
		list    = flag.Bool("list", false, "list experiments and exit")
		out     = flag.String("o", "", "also write results to this file")
		csvDir  = flag.String("csv", "", "also write each table as <dir>/<id>.csv for plotting")
		chart   = flag.Bool("chart", false, "render figure experiments as terminal bar charts")
		jobs    = flag.Int("j", runtime.GOMAXPROCS(0), "run experiments across this many workers")
		journal = flag.String("journal", "", "crash-safe batch journal: completed experiments are appended here and skipped on re-run")
	)
	flag.Parse()

	// Interrupt/terminate cancels in-flight simulations at their next driver
	// checkpoint instead of killing the process mid-table; with -journal the
	// finished work is already on disk and a re-run resumes from it.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Name)
		}
		return
	}

	var selected []experiments.Experiment
	if *run == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			e, ok := experiments.Lookup(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "paperbench: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			os.Exit(1)
		}
	}
	opts := experiments.Options{Quick: *quick}
	fmt.Fprintf(w, "uvmdiscard paperbench — reproducing IISWC'22 \"UVM Discard\" (quick=%v)\n\n", *quick)

	var jnl *experiments.Journal
	if *journal != "" {
		var err error
		jnl, err = experiments.OpenJournal(*journal, *quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			if err := jnl.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "paperbench: journal close: %v\n", err)
			}
		}()
		if n := jnl.Resumed(); n > 0 {
			fmt.Fprintf(os.Stderr, "paperbench: resuming, %d experiments already journaled in %s\n", n, *journal)
		}
	}

	//uvmlint:ignore simdet -- host-side wall time for the progress banner, not simulated time
	started := time.Now()
	done := 0
	results := experiments.RunAllJournaled(ctx, selected, opts, *jobs, jnl, func(r experiments.RunResult) {
		done++
		status := "ok"
		switch {
		case r.Resumed:
			status = "resumed"
		case r.Interrupted():
			status = "canceled"
		case r.Err != nil:
			status = "FAILED"
		}
		fmt.Fprintf(os.Stderr, "[%d/%d] %-4s %-28s %s (%v)\n",
			done, len(selected), r.Experiment.ID, r.Experiment.Name,
			status, r.Wall.Round(time.Millisecond))
	})

	// Emit tables in selection order: output bytes are independent of -j.
	for _, r := range results {
		if r.Err != nil {
			continue
		}
		tbl := r.Table
		fmt.Fprintln(w, tbl.String())
		if *chart && strings.HasPrefix(tbl.ID, "F") {
			if col := tbl.DefaultChartColumn(); col > 0 {
				fmt.Fprintln(w, tbl.Chart(col, 40))
			}
		}
		if *csvDir != "" {
			path := filepath.Join(*csvDir, tbl.ID+".csv")
			if err := os.WriteFile(path, []byte(tbl.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
				os.Exit(1)
			}
		}
	}
	fmt.Fprintf(os.Stderr, "paperbench: %d experiments in %v wall time (-j %d)\n",
		//uvmlint:ignore simdet -- host-side wall time for the summary line, not simulated time
		len(selected), time.Since(started).Round(time.Millisecond), *jobs)

	// Failures are reported together at the end; a broken experiment never
	// silences the rest of the run.
	if failed := experiments.Failed(results); len(failed) > 0 {
		for _, r := range failed {
			fmt.Fprintf(os.Stderr, "paperbench: %s failed: %v\n", r.Experiment.ID, r.Err)
		}
		os.Exit(1)
	}
}

package uvmdiscard_test

import (
	"fmt"

	"uvmdiscard"
)

// The basic lifecycle: allocate unified memory, stage it, consume it on
// the GPU, and discard it once the contents are dead.
func Example() {
	ctx, _ := uvmdiscard.NewContext(uvmdiscard.Config{
		GPU:  uvmdiscard.GenericGPU(64 * uvmdiscard.MiB),
		Link: uvmdiscard.PCIe4(),
	})
	buf, _ := ctx.MallocManaged("data", 8*uvmdiscard.MiB)
	buf.HostWrite(0, buf.Size())

	s := ctx.Stream("main")
	s.PrefetchAll(buf, uvmdiscard.ToGPU)
	s.Launch(uvmdiscard.Kernel{
		Name:     "consume",
		Compute:  ctx.ComputeForBytes(float64(buf.Size())),
		Accesses: []uvmdiscard.Access{{Buf: buf, Mode: uvmdiscard.Read}},
	})
	s.DiscardAll(buf)
	ctx.DeviceSynchronize()

	fmt.Printf("H2D traffic: %s\n",
		uvmdiscard.FormatSize(uvmdiscard.Size(ctx.Metrics().TotalBytes(uvmdiscard.H2D))))
	// Output:
	// H2D traffic: 8 MiB
}

// Demonstrates the Figure 2 scenario: under memory pressure a dead buffer
// normally ping-pongs across the bus; discarding it lets the eviction
// process reclaim its memory for free.
func Example_discardUnderPressure() {
	ctx, _ := uvmdiscard.NewContext(uvmdiscard.Config{
		GPU: uvmdiscard.GenericGPU(8 * uvmdiscard.MiB), // 4 chunks
	})
	s := ctx.Stream("main")

	scratch, _ := ctx.MallocManaged("scratch", 6*uvmdiscard.MiB)
	s.Launch(uvmdiscard.Kernel{Name: "fill",
		Accesses: []uvmdiscard.Access{{Buf: scratch, Mode: uvmdiscard.Write}}})
	s.DiscardAll(scratch) // the scratch contents are dead

	// Pressure: another buffer needs the space.
	other, _ := ctx.MallocManaged("other", 6*uvmdiscard.MiB)
	s.Launch(uvmdiscard.Kernel{Name: "use",
		Accesses: []uvmdiscard.Access{{Buf: other, Mode: uvmdiscard.Write}}})
	ctx.DeviceSynchronize()

	h2d, d2h := ctx.Metrics().Saved()
	fmt.Printf("traffic: %d bytes; avoided by discard: %s\n",
		ctx.Metrics().Traffic(),
		uvmdiscard.FormatSize(uvmdiscard.Size(h2d+d2h)))
	// Output:
	// traffic: 0 bytes; avoided by discard: 4 MiB
}

// Profiling a run and asking the advisor where discards belong (the §8
// reuse-distance extension).
func Example_adviseDiscards() {
	ctx, _ := uvmdiscard.NewContext(uvmdiscard.Config{
		GPU:   uvmdiscard.GenericGPU(8 * uvmdiscard.MiB),
		Trace: uvmdiscard.NewTraceRecorder(),
	})
	s := ctx.Stream("main")
	temp, _ := ctx.MallocManaged("temp", 6*uvmdiscard.MiB)
	live, _ := ctx.MallocManaged("live", 6*uvmdiscard.MiB)

	// temp is written, spilled under pressure, then only overwritten: its
	// transfers moved dead bytes.
	s.Launch(uvmdiscard.Kernel{Name: "a",
		Accesses: []uvmdiscard.Access{{Buf: temp, Mode: uvmdiscard.Write}}})
	s.Launch(uvmdiscard.Kernel{Name: "b",
		Accesses: []uvmdiscard.Access{{Buf: live, Mode: uvmdiscard.Write}}})
	s.Launch(uvmdiscard.Kernel{Name: "c",
		Accesses: []uvmdiscard.Access{{Buf: temp, Mode: uvmdiscard.Write}}})
	ctx.DeviceSynchronize()

	rep := uvmdiscard.AdviseDiscards(ctx)
	fmt.Printf("top recommendation: %s\n", rep.Recommendations[0].AllocName)
	// Output:
	// top recommendation: temp
}
